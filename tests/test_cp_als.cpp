// CP-ALS behaviour: exact recovery of low-rank tensors, fit monotonicity,
// convergence flags, method invariance, warm starts, and the Gram/Hadamard
// helper.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/cp_als.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

TEST(CpAls, ExactlyRecoversLowRankTensorFit) {
  // A noiseless rank-3 tensor must be fit to ~1.0.
  Rng rng(1);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{12, 10, 8}, 3, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 400;
  opts.tol = 1e-12;
  opts.seed = 99;
  const CpAlsResult r = cp_als(X, opts);
  // ALS can converge slowly from random starts ("swamps"); 0.999 already
  // certifies recovery of the low-rank structure.
  EXPECT_GT(r.final_fit, 0.999);
}

TEST(CpAls, RecoversPlantedFactors) {
  Rng rng(2);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{15, 12, 10}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 300;
  opts.tol = 1e-12;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_GT(factor_match_score(r.model, truth), 0.99);
}

TEST(CpAls, FitNonDecreasingUpToTolerance) {
  Rng rng(3);
  Tensor X = Tensor::random_uniform({10, 11, 12}, rng);
  CpAlsOptions opts;
  opts.rank = 4;
  opts.max_iters = 20;
  opts.tol = 0.0;  // run all sweeps
  const CpAlsResult r = cp_als(X, opts);
  ASSERT_GE(r.iters.size(), 2u);
  for (std::size_t i = 1; i < r.iters.size(); ++i) {
    // ALS is monotone in exact arithmetic; allow tiny numerical dips.
    EXPECT_GE(r.iters[i].fit, r.iters[i - 1].fit - 1e-9) << "sweep " << i;
  }
}

TEST(CpAls, ConvergedFlagAndIterationCount) {
  Rng rng(4);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{8, 8, 8}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 500;
  opts.tol = 1e-7;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations, 500);
  EXPECT_EQ(static_cast<int>(r.iters.size()), r.iterations);
}

TEST(CpAls, MaxItersRespectedWhenToleranceTight) {
  Rng rng(5);
  Tensor X = Tensor::random_uniform({9, 9, 9}, rng);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 3;
  opts.tol = 0.0;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3);
}

TEST(CpAls, MethodsProduceSameTrajectory) {
  // With identical seeds, every MTTKRP method must produce numerically
  // equivalent iterates (they compute the same quantity).
  Rng rng(6);
  Tensor X = Tensor::random_uniform({8, 9, 10}, rng);
  CpAlsOptions base;
  base.rank = 3;
  base.max_iters = 5;
  base.tol = 0.0;
  base.seed = 7;

  CpAlsOptions o1 = base;
  o1.method = MttkrpMethod::OneStep;
  CpAlsOptions o2 = base;
  o2.method = MttkrpMethod::TwoStep;
  CpAlsOptions o3 = base;
  o3.method = MttkrpMethod::Reorder;

  const CpAlsResult r1 = cp_als(X, o1);
  const CpAlsResult r2 = cp_als(X, o2);
  const CpAlsResult r3 = cp_als(X, o3);
  EXPECT_NEAR(r1.final_fit, r2.final_fit, 1e-8);
  EXPECT_NEAR(r1.final_fit, r3.final_fit, 1e-8);
  for (index_t n = 0; n < 3; ++n) {
    EXPECT_LT(r1.model.factors[static_cast<std::size_t>(n)].max_abs_diff(
                  r2.model.factors[static_cast<std::size_t>(n)]),
              1e-6);
  }
}

TEST(CpAls, ThreadCountDoesNotChangeResultMaterially) {
  Rng rng(7);
  Tensor X = Tensor::random_uniform({8, 8, 8}, rng);
  CpAlsOptions o;
  o.rank = 2;
  o.max_iters = 4;
  o.tol = 0.0;
  CpAlsOptions o4 = o;
  o4.threads = 4;
  o.threads = 1;
  const CpAlsResult r1 = cp_als(X, o);
  const CpAlsResult r4 = cp_als(X, o4);
  EXPECT_NEAR(r1.final_fit, r4.final_fit, 1e-8);
}

TEST(CpAls, WarmStartFromTruthConvergesImmediately) {
  Rng rng(8);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{10, 9, 8}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 50;
  opts.tol = 1e-9;
  opts.initial_guess = &truth;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations, 3);
  EXPECT_GT(r.final_fit, 0.999999);
}

TEST(CpAls, LambdaAbsorbsScale) {
  // Scaling the tensor by s must scale lambda by ~s and leave fit unchanged.
  Rng rng(9);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{8, 8, 8}, 1, rng);
  Tensor X = truth.full();
  Tensor Xs = X;
  for (index_t l = 0; l < Xs.numel(); ++l) Xs[l] *= 100.0;
  CpAlsOptions opts;
  opts.rank = 1;
  opts.max_iters = 100;
  opts.tol = 1e-10;
  CpAlsResult r = cp_als(X, opts);
  CpAlsResult rs = cp_als(Xs, opts);
  // The max-norm normalization used after the first sweep leaves part of
  // the scale in the factor entries; renormalize to the canonical form
  // (unit 2-norm columns) before comparing lambdas.
  r.model.normalize_columns();
  rs.model.normalize_columns();
  ASSERT_FALSE(r.model.lambda.empty());
  EXPECT_NEAR(rs.model.lambda[0] / r.model.lambda[0], 100.0, 1e-3 * 100.0);
  EXPECT_NEAR(r.final_fit, rs.final_fit, 1e-6);
}

TEST(CpAls, StatsArePopulated) {
  Rng rng(10);
  Tensor X = Tensor::random_uniform({10, 10, 10}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 3;
  opts.tol = 0.0;
  const CpAlsResult r = cp_als(X, opts);
  for (const CpAlsIterStats& s : r.iters) {
    EXPECT_GT(s.seconds, 0.0);
    EXPECT_GT(s.mttkrp_seconds, 0.0);
    EXPECT_GT(s.solve_seconds, 0.0);
    EXPECT_LE(s.mttkrp_seconds + s.solve_seconds, s.seconds * 1.2 + 1e-3);
  }
}

TEST(CpAls, FitOffSkipsResidual) {
  Rng rng(11);
  Tensor X = Tensor::random_uniform({6, 6, 6}, rng);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 4;
  opts.compute_fit = false;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_EQ(r.iterations, 4);  // no convergence check without fit
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.final_fit, 0.0);
}

TEST(CpAls, OverRankedDecompositionStillWellBehaved) {
  // rank > true rank makes H rank-deficient at the optimum: the pinv
  // fallback must keep iterations finite and fit ~1.
  Rng rng(12);
  Ktensor truth = Ktensor::random(std::array<index_t, 3>{8, 8, 8}, 1, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 3;  // over-parameterized
  opts.max_iters = 60;
  opts.tol = 1e-8;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_GT(r.final_fit, 0.999);
  for (double l : r.model.lambda) EXPECT_TRUE(std::isfinite(l));
}

TEST(CpAls, ZeroTensorIsWellDefined) {
  // norm(X) == 0 used to make the fit degenerate (divide by zero). The
  // definition now: a zero tensor is fit perfectly (1.0) exactly when the
  // model's residual is itself zero, and the whole run must stay finite.
  Tensor X({5, 4, 3});  // all zeros
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 10;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_TRUE(std::isfinite(r.final_fit));
  for (double l : r.model.lambda) EXPECT_TRUE(std::isfinite(l));
  for (const Matrix& U : r.model.factors) {
    for (double u : U.span()) EXPECT_TRUE(std::isfinite(u));
  }
  EXPECT_NE(r.status, CpAlsStatus::Diverged);
  // The converged model of a zero tensor reproduces it exactly (lambda
  // collapses to zero), so the defined fit is 1.
  EXPECT_EQ(r.final_fit, 1.0);
}

TEST(CpAls, RejectsBadOptions) {
  Rng rng(13);
  Tensor X = Tensor::random_uniform({4, 4, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 0;
  EXPECT_THROW(cp_als(X, opts), DimensionError);
}

TEST(CpAls, FourWayTensorWorks) {
  Rng rng(14);
  Ktensor truth =
      Ktensor::random(std::array<index_t, 4>{6, 5, 4, 7}, 2, rng);
  Tensor X = truth.full();
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 200;
  opts.tol = 1e-10;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_GT(r.final_fit, 0.999);
}

TEST(HadamardOfGrams, SkipsRequestedMode) {
  Matrix G0(2, 2), G1(2, 2), G2(2, 2);
  G0.fill(2.0);
  G1.fill(3.0);
  G2.fill(5.0);
  const std::vector<Matrix> grams{G0, G1, G2};
  Matrix H = hadamard_of_grams(grams, 1);
  for (double h : H.span()) EXPECT_DOUBLE_EQ(h, 10.0);
  Matrix Hall = hadamard_of_grams(grams, -1);
  for (double h : Hall.span()) EXPECT_DOUBLE_EQ(h, 30.0);
}

TEST(HadamardOfGrams, MismatchThrows) {
  Matrix G0(2, 2), G1(3, 3);
  const std::vector<Matrix> grams{G0, G1};
  EXPECT_THROW(hadamard_of_grams(grams, -1), DimensionError);
}

}  // namespace
}  // namespace dmtk
