#!/usr/bin/env bash
# End-to-end CLI round trip, registered as a ctest (see CMakeLists.txt).
#
#   usage: cli_roundtrip.sh <path-to-dmtk-binary>
#
# Covers: generate -> info -> decompose -> export in both precisions (dense
# AND sparse), fp32 HALS, the fp64-accumulate fp32 path, the fp32 payload
# surfacing in `info`, and the strict-argument audit (every malformed
# numeric flag must exit 1 with a usage message, never an uncaught
# exception, which exits 2).

set -u
dmtk="$1"
work="$(mktemp -d)"
trap 'rm -rf "${work}"' EXIT
fails=0

# Drop the conda activation warning some login shells emit on stderr, so
# output-matching checks see only the tool's own output.
denoise() { sed '/^WARNING conda/d'; }

expect_ok() {
  if ! "$@" > "${work}/out.log" 2>&1; then
    echo "FAIL (expected success): $*"
    cat "${work}/out.log"
    fails=$((fails + 1))
  fi
}

# Usage errors must exit with code 1 exactly: 0 means the bad value was
# silently accepted, 2 means it leaked through as a runtime exception.
expect_usage_error() {
  "$@" > "${work}/out.log" 2>&1
  local code=$?
  if [[ ${code} -ne 1 ]]; then
    echo "FAIL (expected exit 1, got ${code}): $*"
    cat "${work}/out.log"
    fails=$((fails + 1))
  fi
}

expect_grep() {
  local pattern="$1"
  shift
  if ! "$@" 2>&1 | denoise | grep -q "${pattern}"; then
    echo "FAIL (expected output matching '${pattern}'): $*"
    fails=$((fails + 1))
  fi
}

# --- double round trip -----------------------------------------------------
expect_ok "${dmtk}" generate --dims 12x10x8 --rank 3 --seed 5 \
  --out "${work}/x64.dten"
expect_grep "f64" "${dmtk}" info "${work}/x64.dten"
expect_ok "${dmtk}" decompose "${work}/x64.dten" --rank 3 --iters 10 \
  --tol 1e-7 --out "${work}/m64.dktn"
expect_ok "${dmtk}" export "${work}/m64.dktn" --out-prefix "${work}/f64"
[[ -f "${work}/f64_mode0.csv" ]] || { echo "FAIL: missing f64 CSV"; fails=$((fails + 1)); }

# --- float round trip ------------------------------------------------------
expect_ok "${dmtk}" generate --dims 12x10x8 --rank 3 --seed 5 \
  --precision float --out "${work}/x32.dten"
expect_grep "f32" "${dmtk}" info "${work}/x32.dten"
expect_grep "fp32" "${dmtk}" decompose "${work}/x32.dten" --rank 3 \
  --iters 10 --precision float --out "${work}/m32.dktn"
expect_ok "${dmtk}" export "${work}/m32.dktn" --out-prefix "${work}/f32"
# Cross-precision: an f32 payload decomposes fine in double too.
expect_ok "${dmtk}" decompose "${work}/x32.dten" --rank 3 --iters 5
# fp32 HALS: the nonnegative driver runs in float too.
expect_grep "cp_nnhals\[.*fp32" "${dmtk}" decompose "${work}/x32.dten" \
  --rank 3 --iters 5 --precision float --nn
# Mixed-precision accumulate: fp32 storage, fp64 MTTKRP sums.
expect_grep "fp32+acc64" "${dmtk}" decompose "${work}/x32.dten" --rank 3 \
  --iters 5 --precision float --accumulate double --out "${work}/macc.dktn"
expect_ok "${dmtk}" export "${work}/macc.dktn" --out-prefix "${work}/facc"
# ... but it is an fp32-only knob: the double pipeline already sums in fp64.
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank 3 --iters 5 \
  --accumulate double

# The f32 payload should be roughly half the f64 size.
s64=$(stat -c %s "${work}/x64.dten")
s32=$(stat -c %s "${work}/x32.dten")
if [[ ${s32} -ge ${s64} ]]; then
  echo "FAIL: f32 payload (${s32}) not smaller than f64 (${s64})"
  fails=$((fails + 1))
fi

# --- sparse precision handling ---------------------------------------------
expect_ok "${dmtk}" generate --dims 20x18x16 --nnz 200 --seed 5 \
  --out "${work}/s.tns"
# Sparse fp32 runs through both plan-layer kernels and writes a native f32
# model (the kernels keep fp64 accumulators either way).
expect_grep "fp32" "${dmtk}" decompose "${work}/s.tns" --rank 2 --iters 3 \
  --precision float --sweep csf --out "${work}/ms32.dktn"
expect_grep "coo sweep, fp32" "${dmtk}" decompose "${work}/s.tns" --rank 2 \
  --iters 3 --precision float --sweep coo
expect_ok "${dmtk}" export "${work}/ms32.dktn" --out-prefix "${work}/s32"
[[ -f "${work}/s32_mode0.csv" ]] || { echo "FAIL: missing sparse f32 CSV"; fails=$((fails + 1)); }
# Spelling out the default is harmless.
expect_ok "${dmtk}" decompose "${work}/s.tns" --rank 2 --iters 3 \
  --precision double
# The sparse kernels accumulate in fp64 unconditionally, so the dense
# accumulate knob is refused rather than silently accepted.
expect_usage_error "${dmtk}" decompose "${work}/s.tns" --rank 2 --iters 3 \
  --precision float --accumulate double

# --- strict numeric argument audit ----------------------------------------
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank abc
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank 0
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank -3
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank 3 --iters 1.5
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank 3 --tol abc
expect_usage_error "${dmtk}" decompose "${work}/x64.dten" --rank 3 \
  --precision quad
expect_usage_error "${dmtk}" generate --dims 10x-3x7 --out "${work}/bad.dten"
expect_usage_error "${dmtk}" generate --dims 10xx7 --out "${work}/bad.dten"
expect_usage_error "${dmtk}" generate --dims abc --out "${work}/bad.dten"
expect_usage_error "${dmtk}" generate --dims 8x8 --noise abc \
  --out "${work}/bad.dten"
expect_usage_error "${dmtk}" generate --dims 8x8 --density 2 \
  --out "${work}/bad.tns"
expect_usage_error "${dmtk}" generate --dims 8x8 --nnz abc \
  --out "${work}/bad.tns"
expect_usage_error "${dmtk}" tucker "${work}/x64.dten" --ranks 4xqx4

if [[ ${fails} -ne 0 ]]; then
  echo "${fails} CLI round-trip check(s) failed"
  exit 1
fi
echo "CLI round trip OK"
