// Khatri-Rao product algorithms: the row-wise definition, equality of the
// naive / reuse / parallel / column-wise variants, partial-KRP helpers, and
// the flop-saving reuse property.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/krp.hpp"
#include "core/multi_index.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

FactorList ptrs(const std::vector<Matrix>& ms) {
  FactorList fl;
  for (const Matrix& m : ms) fl.push_back(&m);
  return fl;
}

TEST(KrpRows, ProductOfRowCounts) {
  Rng rng(1);
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(3, 2, rng));
  fs.push_back(Matrix::random_uniform(4, 2, rng));
  fs.push_back(Matrix::random_uniform(5, 2, rng));
  EXPECT_EQ(krp_rows(ptrs(fs)), 60);
  EXPECT_EQ(krp_rows(FactorList{}), 1);  // empty product convention
}

TEST(KrpCols, DetectsMismatch) {
  Rng rng(2);
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(3, 2, rng));
  fs.push_back(Matrix::random_uniform(4, 3, rng));
  EXPECT_THROW(krp_cols(ptrs(fs)), DimensionError);
}

TEST(KrpRow, MatchesRowWiseDefinition) {
  // K = A (.) B: K(rB + rA*IB, :) = A(rA,:) * B(rB,:) (Section 2.1).
  Rng rng(3);
  const Matrix A = Matrix::random_uniform(3, 4, rng);
  const Matrix B = Matrix::random_uniform(5, 4, rng);
  std::vector<double> row(4);
  for (index_t ra = 0; ra < 3; ++ra) {
    for (index_t rb = 0; rb < 5; ++rb) {
      krp_row({&A, &B}, rb + ra * 5, row.data());
      for (index_t c = 0; c < 4; ++c) {
        EXPECT_DOUBLE_EQ(row[static_cast<std::size_t>(c)], A(ra, c) * B(rb, c));
      }
    }
  }
}

TEST(KrpTransposed, MatchesColumnwiseKronecker) {
  // The row-wise (transposed) KRP and the TTB-style column-wise KRP are the
  // same mathematical object: Kt(c, r) == K(r, c).
  Rng rng(4);
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(3, 5, rng));
  fs.push_back(Matrix::random_uniform(2, 5, rng));
  fs.push_back(Matrix::random_uniform(4, 5, rng));
  const FactorList fl = ptrs(fs);
  Matrix Kt = krp_transposed(fl, KrpVariant::Reuse, 1);
  Matrix K = krp_columnwise(fl);
  ASSERT_EQ(Kt.rows(), K.cols());
  ASSERT_EQ(Kt.cols(), K.rows());
  for (index_t r = 0; r < K.rows(); ++r) {
    for (index_t c = 0; c < K.cols(); ++c) {
      ASSERT_NEAR(Kt(c, r), K(r, c), 1e-14);
    }
  }
}

TEST(KrpColumnwise, KroneckerOfColumns) {
  // For two factors, column c must be kron(A(:,c), B(:,c)).
  Rng rng(5);
  const Matrix A = Matrix::random_uniform(3, 2, rng);
  const Matrix B = Matrix::random_uniform(4, 2, rng);
  Matrix K = krp_columnwise(FactorList{&A, &B});
  for (index_t c = 0; c < 2; ++c) {
    for (index_t a = 0; a < 3; ++a) {
      for (index_t b = 0; b < 4; ++b) {
        EXPECT_DOUBLE_EQ(K(b + a * 4, c), A(a, c) * B(b, c));
      }
    }
  }
}

class KrpVariantSweep
    : public ::testing::TestWithParam<std::tuple<int, index_t, int>> {};

TEST_P(KrpVariantSweep, NaiveReuseParallelAgree) {
  const auto [Z, C, threads] = GetParam();
  Rng rng(100 + Z * 10 + C);
  std::vector<Matrix> fs;
  const std::array<index_t, 4> rows{4, 3, 5, 2};
  for (int z = 0; z < Z; ++z) {
    fs.push_back(
        Matrix::random_uniform(rows[static_cast<std::size_t>(z)], C, rng));
  }
  const FactorList fl = ptrs(fs);
  Matrix Knaive = krp_transposed(fl, KrpVariant::Naive, 1);
  Matrix Kreuse = krp_transposed(fl, KrpVariant::Reuse, 1);
  Matrix Kpar = krp_transposed(fl, KrpVariant::Reuse, threads);
  testing::expect_matrix_near(Knaive, Kreuse, 1e-14);
  testing::expect_matrix_near(Knaive, Kpar, 1e-14);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KrpVariantSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values<index_t>(1, 3, 25),
                       ::testing::Values(2, 5)));

TEST(KrpRowsRange, SubrangeMatchesFullComputation) {
  // Starting mid-stream (the parallel decomposition) must agree with the
  // full computation — exercises Odometer::seek and partial-product init.
  Rng rng(6);
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(3, 4, rng));
  fs.push_back(Matrix::random_uniform(4, 4, rng));
  fs.push_back(Matrix::random_uniform(5, 4, rng));
  const FactorList fl = ptrs(fs);
  const index_t J = krp_rows(fl);
  Matrix full(4, J);
  krp_rows_reuse(fl, 0, J, full.data(), 4);
  for (index_t r0 : {index_t{0}, index_t{7}, index_t{29}, index_t{59}}) {
    const index_t r1 = std::min<index_t>(J, r0 + 13);
    Matrix part(4, r1 - r0);
    krp_rows_reuse(fl, r0, r1, part.data(), 4);
    for (index_t r = r0; r < r1; ++r) {
      for (index_t c = 0; c < 4; ++c) {
        ASSERT_DOUBLE_EQ(part(c, r - r0), full(c, r)) << "row " << r;
      }
    }
  }
}

TEST(KrpRowsRange, EmptyRangeIsNoop) {
  Rng rng(7);
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(2, 3, rng));
  fs.push_back(Matrix::random_uniform(2, 3, rng));
  Matrix buf(3, 1);
  buf.fill(-1.0);
  krp_rows_reuse(ptrs(fs), 2, 2, buf.data(), 3);
  EXPECT_EQ(buf(0, 0), -1.0);  // untouched
}

TEST(KrpSingleFactor, IsRowCopy) {
  Rng rng(8);
  const Matrix A = Matrix::random_uniform(5, 3, rng);
  Matrix Kt = krp_transposed(FactorList{&A}, KrpVariant::Reuse, 2);
  for (index_t r = 0; r < 5; ++r) {
    for (index_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(Kt(c, r), A(r, c));
  }
}

TEST(KrpFactorHelpers, ModeOrderingForMttkrp) {
  // For mode n the KRP is U_{N-1} (.) ... (.) U_{n+1} (.) U_{n-1} ... U_0;
  // our lists are in product order, so the LAST entry is U_0 (fastest).
  Rng rng(9);
  std::vector<Matrix> fs;
  for (index_t n = 0; n < 4; ++n) {
    fs.push_back(Matrix::random_uniform(2 + n, 3, rng));
  }
  const FactorList k1 = mttkrp_krp_factors(fs, 1);
  ASSERT_EQ(k1.size(), 3u);
  EXPECT_EQ(k1[0], &fs[3]);
  EXPECT_EQ(k1[1], &fs[2]);
  EXPECT_EQ(k1[2], &fs[0]);

  const FactorList left = left_krp_factors(fs, 2);
  ASSERT_EQ(left.size(), 2u);
  EXPECT_EQ(left[0], &fs[1]);
  EXPECT_EQ(left[1], &fs[0]);

  const FactorList right = right_krp_factors(fs, 2);
  ASSERT_EQ(right.size(), 1u);
  EXPECT_EQ(right[0], &fs[3]);

  EXPECT_TRUE(left_krp_factors(fs, 0).empty());
  EXPECT_TRUE(right_krp_factors(fs, 3).empty());
}

TEST(KrpComposition, FullKrpEqualsRightTimesLeftBlocks) {
  // Figure 2's conformal partition: row block j of the full mode-n KRP is
  // KR(j, :) (.) KL. This identity is the core of the 1-step internal-mode
  // algorithm.
  Rng rng(10);
  std::vector<Matrix> fs;
  const std::array<index_t, 4> rows{3, 2, 4, 3};
  for (index_t n = 0; n < 4; ++n) {
    fs.push_back(
        Matrix::random_uniform(rows[static_cast<std::size_t>(n)], 5, rng));
  }
  const index_t mode = 2;
  Matrix Kfull = krp_transposed(mttkrp_krp_factors(fs, mode));
  Matrix KLt = krp_transposed(left_krp_factors(fs, mode));
  Matrix KRt = krp_transposed(right_krp_factors(fs, mode));
  const index_t ILn = KLt.cols();  // 3*2 = 6
  std::vector<double> krrow(5);
  for (index_t j = 0; j < KRt.cols(); ++j) {
    krp_row(right_krp_factors(fs, mode), j, krrow.data());
    for (index_t rl = 0; rl < ILn; ++rl) {
      for (index_t c = 0; c < 5; ++c) {
        ASSERT_NEAR(Kfull(c, j * ILn + rl),
                    krrow[static_cast<std::size_t>(c)] * KLt(c, rl), 1e-14);
      }
    }
  }
}

TEST(KrpLayout, OutputColumnsAreContiguousRows) {
  // Kt column r must be contiguous memory (the property that makes row-wise
  // generation cache-friendly).
  Rng rng(11);
  std::vector<Matrix> fs;
  fs.push_back(Matrix::random_uniform(2, 3, rng));
  fs.push_back(Matrix::random_uniform(3, 3, rng));
  Matrix Kt = krp_transposed(ptrs(fs));
  EXPECT_EQ(Kt.ld(), 3);  // = C: consecutive rows of K are C apart
}

}  // namespace
}  // namespace dmtk
