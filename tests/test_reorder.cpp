// Explicit reordering: permute semantics, matricize layout, and the
// matricize/tensorize round trip.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/reorder.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

TEST(Permute, IdentityIsNoop) {
  Rng rng(1);
  Tensor X = Tensor::random_uniform({3, 4, 5}, rng);
  const std::array<index_t, 3> perm{0, 1, 2};
  Tensor Y = permute(X, perm);
  testing::expect_tensor_near(X, Y, 0.0);
}

TEST(Permute, SwapTwoModesMatchesElementwise) {
  Rng rng(2);
  Tensor X = Tensor::random_uniform({3, 5}, rng);
  const std::array<index_t, 2> perm{1, 0};
  Tensor Y = permute(X, perm);
  ASSERT_EQ(Y.dim(0), 5);
  ASSERT_EQ(Y.dim(1), 3);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 5; ++j) {
      const std::array<index_t, 2> xi{i, j};
      const std::array<index_t, 2> yi{j, i};
      EXPECT_EQ(X(xi), Y(yi));
    }
  }
}

TEST(Permute, GeneralPermutationElementwise) {
  Rng rng(3);
  Tensor X = Tensor::random_uniform({2, 3, 4, 5}, rng);
  const std::array<index_t, 4> perm{2, 0, 3, 1};
  Tensor Y = permute(X, perm);
  ASSERT_EQ(Y.dim(0), 4);
  ASSERT_EQ(Y.dim(1), 2);
  ASSERT_EQ(Y.dim(2), 5);
  ASSERT_EQ(Y.dim(3), 3);
  std::array<index_t, 4> xi{};
  for (xi[0] = 0; xi[0] < 2; ++xi[0]) {
    for (xi[1] = 0; xi[1] < 3; ++xi[1]) {
      for (xi[2] = 0; xi[2] < 4; ++xi[2]) {
        for (xi[3] = 0; xi[3] < 5; ++xi[3]) {
          const std::array<index_t, 4> yi{xi[2], xi[0], xi[3], xi[1]};
          ASSERT_EQ(X(xi), Y(yi));
        }
      }
    }
  }
}

TEST(Permute, InverseRoundTrips) {
  Rng rng(4);
  Tensor X = Tensor::random_uniform({4, 3, 6}, rng);
  const std::array<index_t, 3> perm{2, 0, 1};
  const std::array<index_t, 3> inv{1, 2, 0};  // inv[perm[k]] = k
  Tensor Y = permute(permute(X, perm), inv);
  testing::expect_tensor_near(X, Y, 0.0);
}

TEST(Permute, ThreadCountInvariant) {
  Rng rng(5);
  Tensor X = Tensor::random_uniform({6, 7, 8}, rng);
  const std::array<index_t, 3> perm{1, 2, 0};
  Tensor Y1 = permute(X, perm, 1);
  Tensor Y4 = permute(X, perm, 4);
  testing::expect_tensor_near(Y1, Y4, 0.0);
}

TEST(Permute, InvalidPermutationThrows) {
  Tensor X({2, 2});
  const std::array<index_t, 2> dup{0, 0};
  EXPECT_THROW(permute(X, dup), DimensionError);
  const std::array<index_t, 2> oob{0, 2};
  EXPECT_THROW(permute(X, oob), DimensionError);
}

TEST(Matricize, Mode0EqualsRawBuffer) {
  Rng rng(6);
  Tensor X = Tensor::random_uniform({4, 3, 5}, rng);
  Matrix M = matricize(X, 0);
  ASSERT_EQ(M.rows(), 4);
  ASSERT_EQ(M.cols(), 15);
  for (index_t l = 0; l < X.numel(); ++l) EXPECT_EQ(M.data()[l], X[l]);
}

TEST(Matricize, FibersBecomeColumns) {
  Rng rng(7);
  Tensor X = Tensor::random_uniform({3, 4, 5}, rng);
  const index_t n = 1;
  Matrix M = matricize(X, n);
  ASSERT_EQ(M.rows(), 4);
  ASSERT_EQ(M.cols(), 15);
  // Column index = i0 + i2 * 3 (remaining modes linearized, mode 0 fastest).
  std::array<index_t, 3> idx{};
  for (idx[0] = 0; idx[0] < 3; ++idx[0]) {
    for (idx[1] = 0; idx[1] < 4; ++idx[1]) {
      for (idx[2] = 0; idx[2] < 5; ++idx[2]) {
        EXPECT_EQ(M(idx[1], idx[0] + idx[2] * 3), X(idx));
      }
    }
  }
}

TEST(Matricize, LastModeMatchesRowMajorView) {
  Rng rng(8);
  Tensor X = Tensor::random_uniform({3, 4, 5}, rng);
  Matrix M = matricize(X, 2);
  // X(N-1) is row-major in the natural layout: M(i, c) == data[c + i*12].
  for (index_t i = 0; i < 5; ++i) {
    for (index_t c = 0; c < 12; ++c) {
      EXPECT_EQ(M(i, c), X.data()[c + i * 12]);
    }
  }
}

TEST(Tensorize, RoundTripsEveryMode) {
  Rng rng(9);
  const std::vector<index_t> dims{3, 4, 2, 5};
  Tensor X = Tensor::random_uniform(dims, rng);
  for (index_t n = 0; n < 4; ++n) {
    Matrix M = matricize(X, n);
    Tensor Y = tensorize(M, dims, n);
    testing::expect_tensor_near(X, Y, 0.0);
  }
}

TEST(Tensorize, WrongRowCountThrows) {
  Matrix M(3, 8);
  const std::vector<index_t> dims{4, 3, 2};
  EXPECT_THROW(tensorize(M, dims, 0), DimensionError);
}

}  // namespace
}  // namespace dmtk
