/// \file test_serve_faults.cpp
/// \brief Self-healing server behavior under injected faults: worker
/// batch isolation, plan-cache degrade-to-bypass, accept-path drops with
/// client retry, and the health probe that reports all of it.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/tensor.hpp"
#include "io/tensor_io.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace dmtk::serve {
namespace {

namespace fs = std::filesystem;

class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::disarm_all();
    char tmpl[] = "/tmp/dmtk_servef_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    fault::disarm_all();
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void start(ServeOptions opts) {
    opts.socket = (fs::path(dir_) / "dmtk.sock").string();
    socket_ = opts.socket;
    server_ = std::make_unique<Server>(opts);
    server_->start();
  }

  std::string make_dense(const std::string& name, std::vector<index_t> dims,
                         std::uint64_t seed = 11) {
    Rng rng(seed);
    const Tensor X = Tensor::random_uniform(std::move(dims), rng);
    const std::string path = (fs::path(dir_) / name).string();
    io::write_tensor(path, X);
    return path;
  }

  Json roundtrip(const Json& req) {
    Client c;
    c.connect(socket_);
    return c.roundtrip(req);
  }

  std::string dir_;
  std::string socket_;
  std::unique_ptr<Server> server_;
};

Json decompose_req(const std::string& tensor, index_t rank, int iters) {
  Json r;
  r.set("type", Json("decompose"));
  r.set("tensor", Json(tensor));
  r.set("rank", Json(rank));
  r.set("iters", Json(iters));
  r.set("tol", Json(0.0));
  return r;
}

const std::string& error_code(const Json& resp) {
  const Json* err = resp.find("error");
  EXPECT_NE(err, nullptr) << resp.dump();
  const Json* code = err->find("code");
  EXPECT_NE(code, nullptr) << resp.dump();
  return code->as_string();
}

// ---------------------------------------------------------------------------
// Worker isolation: an exception escaping batch processing fails the jobs,
// never the worker.
// ---------------------------------------------------------------------------

TEST_F(ServeFaultTest, WorkerFaultYieldsInternalErrorAndWorkerSurvives) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("w.dten", {8, 7, 6});

  fault::arm("serve.worker", 1.0, 5, /*max_triggers=*/1);
  const Json failed = roundtrip(decompose_req(tensor, 3, 2));
  ASSERT_FALSE(failed.find("ok")->as_bool()) << failed.dump();
  EXPECT_EQ(error_code(failed), "internal");
  const Json* msg = failed.find("error")->find("message");
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(msg->as_string().find("injected fault"), std::string::npos);

  // The fault budget is spent: the SAME worker must now serve this.
  const Json ok = roundtrip(decompose_req(tensor, 3, 2));
  EXPECT_TRUE(ok.find("ok")->as_bool()) << ok.dump();

  // And the backstop counted exactly one batch failure.
  Json health;
  health.set("type", Json("health"));
  const Json h = roundtrip(health);
  ASSERT_TRUE(h.find("ok")->as_bool()) << h.dump();
  EXPECT_EQ(h.find("self_healing")->find("worker_failures")->as_number(),
            1.0);
  EXPECT_EQ(h.find("faults")->find("serve.worker")->as_number(), 1.0);
}

// ---------------------------------------------------------------------------
// Plan cache: a failed plan construction degrades to bypass, requests
// still succeed.
// ---------------------------------------------------------------------------

TEST_F(ServeFaultTest, ArenaFaultDegradesCacheToBypassButRequestsSucceed) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("a.dten", {9, 8, 7});

  // One arena failure: the cache's plan build throws, the worker falls
  // back to a transient plan (whose build is past the fault budget).
  fault::arm("arena.alloc", 1.0, 5, /*max_triggers=*/1);
  const Json resp = roundtrip(decompose_req(tensor, 3, 2));
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("plan")->as_string(), "bypass");

  // Health reports the build failure and the degraded worker.
  Json health;
  health.set("type", Json("health"));
  const Json h = roundtrip(health);
  EXPECT_GE(h.find("self_healing")->find("cache_build_failures")->as_number(),
            1.0);
  EXPECT_EQ(h.find("self_healing")->find("degraded_workers")->as_number(),
            1.0);

  // While degraded, requests keep succeeding in bypass mode.
  const Json again = roundtrip(decompose_req(tensor, 3, 2));
  ASSERT_TRUE(again.find("ok")->as_bool()) << again.dump();
  EXPECT_EQ(again.find("plan")->as_string(), "bypass");
}

// ---------------------------------------------------------------------------
// Health probe shape
// ---------------------------------------------------------------------------

TEST_F(ServeFaultTest, HealthReportsShapeAndEchoesId) {
  ServeOptions so;
  so.workers = 2;
  so.threads = 1;
  start(so);

  Json req;
  req.set("type", Json("health"));
  req.set("id", Json(42));
  const Json h = roundtrip(req);
  ASSERT_TRUE(h.find("ok")->as_bool()) << h.dump();
  EXPECT_EQ(h.find("type")->as_string(), "health");
  EXPECT_EQ(h.find("id")->as_number(), 42.0);
  EXPECT_GE(h.find("uptime_s")->as_number(), 0.0);
  EXPECT_EQ(h.find("workers")->as_number(), 2.0);
  ASSERT_NE(h.find("queue"), nullptr);
  EXPECT_GE(h.find("queue")->find("capacity")->as_number(), 1.0);
  const Json* heal = h.find("self_healing");
  ASSERT_NE(heal, nullptr);
  EXPECT_EQ(heal->find("worker_failures")->as_number(), 0.0);
  EXPECT_EQ(heal->find("accept_faults")->as_number(), 0.0);
  EXPECT_EQ(heal->find("cache_build_failures")->as_number(), 0.0);
  EXPECT_EQ(heal->find("degraded_workers")->as_number(), 0.0);
  // No faults armed: an empty object, not null.
  ASSERT_NE(h.find("faults"), nullptr);
  EXPECT_TRUE(h.find("faults")->is_object());

  // Health is strict like the rest of the protocol.
  Json bad;
  bad.set("type", Json("health"));
  bad.set("tensor", Json("nope"));
  const Json rej = roundtrip(bad);
  ASSERT_FALSE(rej.find("ok")->as_bool());
  EXPECT_EQ(error_code(rej), "invalid_request");
}

// ---------------------------------------------------------------------------
// Accept faults: dropped connections are counted; the retry client rides
// through them.
// ---------------------------------------------------------------------------

TEST_F(ServeFaultTest, ClientRetryRidesThroughAcceptFaults) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("r.dten", {8, 6, 5});

  // The first TWO accepted connections are dropped on the floor; the
  // retry policy must carry the request through to the third.
  fault::arm("serve.accept", 1.0, 5, /*max_triggers=*/2);
  RetryPolicy pol;
  pol.retries = 4;
  pol.base_ms = 10;
  pol.jitter_seed = 7;
  const std::string line = decompose_req(tensor, 3, 2).dump();
  const Json resp = Json::parse(request_with_retry(socket_, line, pol));
  ASSERT_NE(resp.find("ok"), nullptr) << resp.dump();
  EXPECT_TRUE(resp.find("ok")->as_bool()) << resp.dump();

  Json health;
  health.set("type", Json("health"));
  const Json h = roundtrip(health);
  EXPECT_EQ(h.find("self_healing")->find("accept_faults")->as_number(), 2.0);
}

TEST_F(ServeFaultTest, RetryGivesUpAfterBudgetWithTransportError) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("g.dten", {6, 5, 4});

  // Every accept drops the connection: all attempts fail, and the last
  // transport error propagates.
  fault::arm("serve.accept", 1.0, 5);
  RetryPolicy pol;
  pol.retries = 2;
  pol.base_ms = 5;
  const std::string line = decompose_req(tensor, 2, 1).dump();
  EXPECT_THROW((void)request_with_retry(socket_, line, pol), ClientError);
}

// ---------------------------------------------------------------------------
// Retry on busy: a full queue clears and the retry lands.
// ---------------------------------------------------------------------------

TEST_F(ServeFaultTest, RetryRidesThroughBusyRejections) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  so.queue_depth = 1;
  so.max_batch = 1;
  start(so);
  const std::string tensor = make_dense("b.dten", {16, 14, 12});

  // Saturate: several slow decomposes racing one queue slot. Some drivers
  // will be rejected busy; with retry they must ALL complete eventually.
  const std::string line = decompose_req(tensor, 6, 30).dump();
  std::vector<std::thread> drivers;
  std::atomic<int> oks{0};
  for (int i = 0; i < 4; ++i) {
    drivers.emplace_back([&, i] {
      RetryPolicy pol;
      pol.retries = 50;
      pol.base_ms = 20;
      pol.max_backoff_ms = 50;  // stay frequent: the queue drains in ms
      pol.jitter_seed = static_cast<std::uint64_t>(i);
      const Json resp = Json::parse(request_with_retry(socket_, line, pol));
      const Json* ok = resp.find("ok");
      if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
        oks.fetch_add(1);
      }
    });
  }
  for (auto& t : drivers) t.join();
  EXPECT_EQ(oks.load(), 4);
}

}  // namespace
}  // namespace dmtk::serve
