// SYRK correctness: Gram matrices (A^T A) and outer products (A A^T),
// symmetry of the output, beta accumulation, and thread counts.

#include <gtest/gtest.h>

#include <vector>

#include "blas/syrk.hpp"
#include "util/rng.hpp"

namespace dmtk::blas {
namespace {

struct SyrkCase {
  index_t n, k;
  bool trans;
  int threads;
};

class SyrkSweep : public ::testing::TestWithParam<SyrkCase> {};

TEST_P(SyrkSweep, MatchesNaiveGram) {
  const SyrkCase p = GetParam();
  Rng rng(42 + p.n + p.k);
  // trans: A is k x n (Gram A^T A); !trans: A is n x k (A A^T).
  const index_t arows = p.trans ? p.k : p.n;
  const index_t acols = p.trans ? p.n : p.k;
  std::vector<double> A(static_cast<std::size_t>(arows * acols));
  fill_uniform(A, rng, -1, 1);
  std::vector<double> C(static_cast<std::size_t>(p.n * p.n), 0.0);

  syrk(p.trans ? Trans::Trans : Trans::NoTrans, p.n, p.k, 1.0, A.data(), arows,
       0.0, C.data(), p.n, p.threads);

  for (index_t j = 0; j < p.n; ++j) {
    for (index_t i = 0; i < p.n; ++i) {
      double expect = 0.0;
      for (index_t t = 0; t < p.k; ++t) {
        const double ai = p.trans ? A[t + i * arows] : A[i + t * arows];
        const double aj = p.trans ? A[t + j * arows] : A[j + t * arows];
        expect += ai * aj;
      }
      ASSERT_NEAR(C[i + j * p.n], expect, 1e-11 * static_cast<double>(p.k + 1))
          << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SyrkSweep,
    ::testing::Values(SyrkCase{1, 1, true, 1}, SyrkCase{5, 100, true, 1},
                      SyrkCase{25, 900, true, 2}, SyrkCase{50, 64, true, 4},
                      SyrkCase{8, 13, false, 1}, SyrkCase{30, 7, false, 3},
                      // Large n: several NB column blocks of the blocked
                      // GEMM sweep, both orientations, threaded.
                      SyrkCase{300, 40, true, 2}, SyrkCase{260, 33, false, 2},
                      SyrkCase{129, 300, true, 3}));

TEST(Syrk, OutputIsExactlySymmetric) {
  Rng rng(9);
  const index_t n = 17, k = 40;
  std::vector<double> A(static_cast<std::size_t>(k * n));
  fill_uniform(A, rng, -1, 1);
  std::vector<double> C(static_cast<std::size_t>(n * n), 0.0);
  syrk(Trans::Trans, n, k, 1.0, A.data(), k, 0.0, C.data(), n, 2);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < n; ++i) {
      ASSERT_EQ(C[i + j * n], C[j + i * n]);  // bitwise: mirrored, not recomputed
    }
  }
}

TEST(Syrk, BetaAccumulates) {
  const index_t n = 3, k = 2;
  std::vector<double> A(static_cast<std::size_t>(k * n), 1.0);  // all-ones
  std::vector<double> C(static_cast<std::size_t>(n * n), 10.0);
  syrk(Trans::Trans, n, k, 2.0, A.data(), k, 0.5, C.data(), n, 1);
  // Each Gram entry is k = 2; 2*2 + 0.5*10 = 9.
  for (double c : C) EXPECT_DOUBLE_EQ(c, 9.0);
}

TEST(Syrk, DiagonalIsSumOfSquares) {
  std::vector<double> A{3.0, 4.0};  // one column, k = 2
  std::vector<double> C(1, 0.0);
  syrk(Trans::Trans, index_t{1}, index_t{2}, 1.0, A.data(), index_t{2}, 0.0,
       C.data(), index_t{1});
  EXPECT_DOUBLE_EQ(C[0], 25.0);
}

TEST(Syrk, LargeNStaysMirroredAndHeapFreeWithWorkspace) {
  // n > the internal NB column-block width: the triangular sweep spans
  // several blocked GEMM calls, and the lower triangle must still be a
  // bitwise mirror. With a caller workspace the whole call stays off the
  // internal fallback arena.
  Rng rng(77);
  const index_t n = 220, k = 60;
  std::vector<double> A(static_cast<std::size_t>(k * n));
  fill_uniform(A, rng, -1, 1);
  std::vector<double> C(static_cast<std::size_t>(n * n), 0.0);

  std::vector<double> buf(syrk_workspace_elems<double>(n, k, 2));
  const GemmWorkspace ws = typed_workspace(buf.data(), buf.size());
  syrk(Trans::Trans, n, k, 1.0, A.data(), k, 0.0, C.data(), n, 2, ws);
  const std::size_t allocs_before = gemm_internal_allocs();
  syrk(Trans::Trans, n, k, 1.0, A.data(), k, 0.0, C.data(), n, 2, ws);
  EXPECT_EQ(gemm_internal_allocs(), allocs_before);

  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) {
      ASSERT_EQ(C[i + j * n], C[j + i * n]) << i << "," << j;
    }
  }
  // Spot-check values against dot products.
  for (index_t s = 0; s < 40; ++s) {
    const index_t i = (s * 13) % n, j = (s * 29) % n;
    double expect = 0.0;
    for (index_t t = 0; t < k; ++t) expect += A[t + i * k] * A[t + j * k];
    ASSERT_NEAR(C[i + j * n], expect, 1e-12 * static_cast<double>(k + 1));
  }
}

TEST(Syrk, BadLdcThrows) {
  std::vector<double> buf(16, 0.0);
  EXPECT_THROW(syrk(Trans::Trans, index_t{4}, index_t{1}, 1.0, buf.data(),
                    index_t{1}, 0.0, buf.data(), index_t{2}),
               DimensionError);
}

}  // namespace
}  // namespace dmtk::blas
