// Tests for the level-1 mini-BLAS kernels, including stride handling.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/level1.hpp"

namespace dmtk::blas {
namespace {

TEST(Dot, Basic) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(index_t{3}, x.data(), index_t{1}, y.data(), index_t{1}),
                   32.0);
}

TEST(Dot, Strided) {
  // x = elements 0,2,4 of buffer; y = elements 0,3 stride... use stride 2/3.
  const std::vector<double> x{1, 9, 2, 9, 3, 9};
  const std::vector<double> y{4, 0, 0, 5, 0, 0, 6};
  EXPECT_DOUBLE_EQ(dot(index_t{3}, x.data(), index_t{2}, y.data(), index_t{3}),
                   32.0);
}

TEST(Dot, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(dot<double>(0, nullptr, 1, nullptr, 1), 0.0);
}

TEST(Axpy, Basic) {
  const std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  axpy(index_t{3}, 2.0, x.data(), index_t{1}, y.data(), index_t{1});
  EXPECT_EQ(y, (std::vector<double>{12, 24, 36}));
}

TEST(Axpy, Strided) {
  const std::vector<double> x{1, 0, 2};
  std::vector<double> y{5, 5, 5, 5};
  axpy(index_t{2}, 3.0, x.data(), index_t{2}, y.data(), index_t{3});
  EXPECT_EQ(y, (std::vector<double>{8, 5, 5, 11}));
}

TEST(Scal, Basic) {
  std::vector<double> x{1, -2, 3};
  scal(index_t{3}, -2.0, x.data(), index_t{1});
  EXPECT_EQ(x, (std::vector<double>{-2, 4, -6}));
}

TEST(Scal, ZeroAlphaClears) {
  std::vector<double> x{1, 2};
  scal(index_t{2}, 0.0, x.data(), index_t{1});
  EXPECT_EQ(x, (std::vector<double>{0, 0}));
}

TEST(Copy, Basic) {
  const std::vector<double> x{7, 8, 9};
  std::vector<double> y(3, 0.0);
  copy(index_t{3}, x.data(), index_t{1}, y.data(), index_t{1});
  EXPECT_EQ(y, x);
}

TEST(Nrm2, Pythagorean) {
  const std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(index_t{2}, x.data(), index_t{1}), 5.0);
}

TEST(Nrm2, SingleElement) {
  const std::vector<double> x{-7};
  EXPECT_DOUBLE_EQ(nrm2(index_t{1}, x.data(), index_t{1}), 7.0);
}

TEST(Asum, AbsoluteValues) {
  const std::vector<double> x{1, -2, 3, -4};
  EXPECT_DOUBLE_EQ(asum(index_t{4}, x.data(), index_t{1}), 10.0);
}

TEST(Iamax, FindsLargestMagnitude) {
  const std::vector<double> x{1, -5, 3};
  EXPECT_EQ(iamax(index_t{3}, x.data(), index_t{1}), 1);
}

TEST(Iamax, FirstOnTies) {
  const std::vector<double> x{2, -2, 2};
  EXPECT_EQ(iamax(index_t{3}, x.data(), index_t{1}), 0);
}

TEST(Iamax, EmptyReturnsMinusOne) {
  EXPECT_EQ(iamax<double>(0, nullptr, 1), -1);
}

TEST(Hadamard, ElementwiseProduct) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 5, 6};
  std::vector<double> z(3);
  hadamard(index_t{3}, x.data(), y.data(), z.data());
  EXPECT_EQ(z, (std::vector<double>{4, 10, 18}));
}

TEST(Hadamard, InPlace) {
  const std::vector<double> x{2, 3};
  std::vector<double> z{10, 10};
  hadamard_inplace(index_t{2}, x.data(), z.data());
  EXPECT_EQ(z, (std::vector<double>{20, 30}));
}

TEST(Level1Float, WorksForFloat) {
  const std::vector<float> x{1.0f, 2.0f};
  const std::vector<float> y{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(dot(index_t{2}, x.data(), index_t{1}, y.data(), index_t{1}),
                  11.0f);
  EXPECT_FLOAT_EQ(nrm2(index_t{2}, y.data(), index_t{1}), 5.0f);
}

}  // namespace
}  // namespace dmtk::blas
