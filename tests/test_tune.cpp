// Wisdom-profile subsystem (src/tune/): serialization round trips, the
// CRC-checked save/load path, the strictness contract (corrupt or
// other-CPU profiles never half-apply), the apply/clear side effects on
// the process-global dispatch level and GEMM blocking, the plan-time
// consults (dimtree min-order/levels, two-step side), and the numerical
// contract of a loaded profile: blocking changes that only re-partition
// MC/NC are BITWISE invisible (per-C-element accumulation order depends
// only on the KC split and the in-kernel p order), while a KC change is
// fit-equivalent but may differ in the last ulps.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "blas/cpu_features.hpp"
#include "blas/gemm_workspace.hpp"
#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "exec/exec_context.hpp"
#include "exec/mttkrp_plan.hpp"
#include "exec/sweep_plan.hpp"
#include "io/checked_io.hpp"
#include "tune/wisdom.hpp"
#include "util/rng.hpp"

namespace dmtk::tune {
namespace {

using blas::GemmBlocking;
using blas::SimdLevel;

std::string temp_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("dmtk_test_") + tag + "_" +
           std::to_string(::getpid()) + ".json"))
      .string();
}

/// Every test leaves the process-global tune/blas state as it found it.
class TuneTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_wisdom();
    entry_level_ = blas::simd_level();
    entry_blocking_ = blas::gemm_blocking();
  }
  void TearDown() override {
    clear_wisdom();
    blas::set_simd_level(entry_level_);
    blas::set_gemm_blocking(entry_blocking_);
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string scratch_file(const char* tag) {
    cleanup_.push_back(temp_path(tag));
    return cleanup_.back();
  }

  /// A profile keyed to THIS machine that apply_wisdom will accept, with
  /// recognizably non-default tunables.
  WisdomProfile local_profile() const {
    WisdomProfile p;
    p.cpu_brand = cpu_brand();
    p.cpu_ladder = cpu_ladder();
    p.best_simd_f64 = blas::default_simd_level();
    p.best_simd_f32 = blas::default_simd_level();
    p.blocking = GemmBlocking{128, 192, 512};
    p.dimtree_levels = 1;
    p.dimtree_min_order = 3;
    p.twostep = TwoStepPref::Right;
    p.sparse_crossover = 0.25;
    p.created = "test";
    p.tune_threads = 1;
    p.default_gflops_f64 = 10.0;
    p.tuned_gflops_f64 = 12.0;
    p.levels.push_back({SimdLevel::Scalar, 1.0, 2.0});
    return p;
  }

  SimdLevel entry_level_ = SimdLevel::Scalar;
  GemmBlocking entry_blocking_{};
  std::vector<std::string> cleanup_;
};

TEST_F(TuneTest, TwoStepPrefParsesAndPrints) {
  for (TwoStepPref p :
       {TwoStepPref::Heuristic, TwoStepPref::Left, TwoStepPref::Right}) {
    const auto back = parse_twostep_pref(to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(parse_twostep_pref("sideways").has_value());
}

TEST_F(TuneTest, ProfileJsonRoundTrips) {
  const WisdomProfile p = local_profile();
  const WisdomProfile q = profile_from_json(profile_to_json(p));
  EXPECT_EQ(q.cpu_brand, p.cpu_brand);
  EXPECT_EQ(q.cpu_ladder, p.cpu_ladder);
  EXPECT_EQ(q.best_simd_f64, p.best_simd_f64);
  EXPECT_EQ(q.best_simd_f32, p.best_simd_f32);
  EXPECT_EQ(q.blocking, p.blocking);
  EXPECT_EQ(q.dimtree_levels, p.dimtree_levels);
  EXPECT_EQ(q.dimtree_min_order, p.dimtree_min_order);
  EXPECT_EQ(q.twostep, p.twostep);
  EXPECT_DOUBLE_EQ(q.sparse_crossover, p.sparse_crossover);
  EXPECT_EQ(q.created, p.created);
  EXPECT_EQ(q.quick, p.quick);
  ASSERT_EQ(q.levels.size(), p.levels.size());
  EXPECT_EQ(q.levels[0].level, p.levels[0].level);
  EXPECT_DOUBLE_EQ(q.levels[0].f64_gflops, p.levels[0].f64_gflops);
}

TEST_F(TuneTest, MalformedProfileJsonRejects) {
  EXPECT_THROW((void)profile_from_json("not json at all"),
               std::runtime_error);
  EXPECT_THROW((void)profile_from_json("{\"format\":\"wrong-format\"}"),
               std::runtime_error);
  // Field validation: an unknown SIMD level name must reject (a profile
  // from a newer build must not half-apply here).
  WisdomProfile p = local_profile();
  std::string json = profile_to_json(p);
  const auto at = json.find(to_string(p.best_simd_f64));
  ASSERT_NE(at, std::string::npos);
  json.replace(at, std::string(to_string(p.best_simd_f64)).size(),
               "avx1024-64x64");
  EXPECT_THROW((void)profile_from_json(json), std::runtime_error);
}

TEST_F(TuneTest, SaveReadRoundTripsThroughCrcFile) {
  const std::string path = scratch_file("roundtrip");
  const WisdomProfile p = local_profile();
  save_wisdom(path, p);
  const WisdomProfile q = read_wisdom_file(path);
  EXPECT_EQ(q.blocking, p.blocking);
  EXPECT_EQ(q.twostep, p.twostep);
  EXPECT_EQ(q.dimtree_min_order, p.dimtree_min_order);
}

TEST_F(TuneTest, CorruptProfileIsRejectedAtLoad) {
  const std::string path = scratch_file("corrupt");
  save_wisdom(path, local_profile());
  // Flip one payload byte; the CRC32 footer must catch it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(10);
    char c = 0;
    f.seekg(10);
    f.get(c);
    f.seekp(10);
    f.put(static_cast<char>(c ^ 0x40));
  }
  EXPECT_THROW((void)read_wisdom_file(path), io::IoError);
  // The strict registry load reports failure and applies nothing.
  std::string why;
  EXPECT_FALSE(load_wisdom(path, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(wisdom_loaded());
  EXPECT_EQ(blas::gemm_blocking(), entry_blocking_);
}

TEST_F(TuneTest, OtherCpuProfileIsRejectedAtLoad) {
  WisdomProfile p = local_profile();
  p.cpu_brand = "Imaginary Hexium 9000";
  const std::string path = scratch_file("othercpu");
  save_wisdom(path, p);
  std::string why;
  EXPECT_FALSE(load_wisdom(path, &why));
  EXPECT_NE(why.find("CPU"), std::string::npos);
  EXPECT_FALSE(wisdom_loaded());
  EXPECT_EQ(blas::gemm_blocking(), entry_blocking_);
}

TEST_F(TuneTest, ApplyAndClearMoveTheGlobalKnobs) {
  const WisdomProfile p = local_profile();
  apply_wisdom(p, "unit-test");
  EXPECT_TRUE(wisdom_loaded());
  EXPECT_EQ(wisdom_source(), "unit-test");
  EXPECT_EQ(blas::gemm_blocking(), p.blocking);
  if (!blas::simd_env_override()) {
    EXPECT_EQ(blas::simd_level(), p.best_simd_f64);
  }
  EXPECT_EQ(auto_dimtree_min_order(), 3);
  EXPECT_EQ(wisdom_dimtree_levels(), 1);
  EXPECT_EQ(wisdom_twostep(), TwoStepPref::Right);
  EXPECT_DOUBLE_EQ(wisdom_sparse_crossover(), 0.25);

  clear_wisdom();
  EXPECT_FALSE(wisdom_loaded());
  EXPECT_EQ(blas::gemm_blocking(), GemmBlocking{});
  EXPECT_EQ(auto_dimtree_min_order(), kDefaultDimtreeMinOrder);
  EXPECT_EQ(wisdom_dimtree_levels(), kDefaultDimtreeLevels);
  EXPECT_EQ(wisdom_twostep(), TwoStepPref::Heuristic);
  EXPECT_DOUBLE_EQ(wisdom_sparse_crossover(), kDefaultSparseCrossover);
}

TEST_F(TuneTest, LoadWisdomAppliesOnMatch) {
  const std::string path = scratch_file("match");
  const WisdomProfile p = local_profile();
  save_wisdom(path, p);
  std::string why;
  ASSERT_TRUE(load_wisdom(path, &why)) << why;
  EXPECT_TRUE(wisdom_loaded());
  EXPECT_EQ(wisdom_source(), path);
  EXPECT_EQ(blas::gemm_blocking(), p.blocking);
}

TEST_F(TuneTest, SetGemmBlockingClampsToSaneBounds) {
  const GemmBlocking absurd{1, 1, 1};
  const GemmBlocking got = blas::set_gemm_blocking(absurd);
  EXPECT_GE(got.mc, blas::kGemmMinMC);
  EXPECT_GE(got.kc, blas::kGemmMinKC);
  EXPECT_GE(got.nc, blas::kGemmMinNC);
  const GemmBlocking huge{1 << 20, 1 << 20, 1 << 20};
  const GemmBlocking got2 = blas::set_gemm_blocking(huge);
  EXPECT_LE(got2.mc, blas::kGemmMaxMC);
  EXPECT_LE(got2.kc, blas::kGemmMaxKC);
  EXPECT_LE(got2.nc, blas::kGemmMaxNC);
}

// The consult wiring in the plan layer.

TEST_F(TuneTest, DimtreeMinOrderConsultSteersAutoResolution) {
  WisdomProfile p = local_profile();
  p.dimtree_min_order = 3;
  apply_wisdom(p);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 3), SweepScheme::DimTree);
  p.dimtree_min_order = 5;
  apply_wisdom(p);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 3), SweepScheme::PerMode);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 4), SweepScheme::PerMode);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 5), SweepScheme::DimTree);
  // Explicit schemes are never overridden by wisdom.
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::PerMode, 6),
            SweepScheme::PerMode);
}

TEST_F(TuneTest, DimtreeLevelsConsultCapsPlannedTreeDepth) {
  const std::vector<index_t> dims{4, 4, 4, 4};
  ExecContext ctx(1);
  CpAlsSweepPlan full(ctx, dims, 4, SweepScheme::DimTree);
  EXPECT_GT(full.levels(), 1);

  WisdomProfile p = local_profile();  // dimtree_levels = 1
  apply_wisdom(p);
  CpAlsSweepPlan capped(ctx, dims, 4, SweepScheme::DimTree);
  EXPECT_EQ(capped.levels(), 1);

  // An explicit caller cap still wins over the consult.
  CpAlsSweepPlan explicit_full(ctx, dims, 4, SweepScheme::DimTree,
                               MttkrpMethod::Auto, 8);
  EXPECT_GT(explicit_full.levels(), 1);
}

TEST_F(TuneTest, TwoStepConsultSteersAutoSide) {
  const std::vector<index_t> dims{8, 6, 8};  // internal mode 1: ILn == IRn
  ExecContext ctx(1);
  WisdomProfile p = local_profile();
  p.twostep = TwoStepPref::Left;
  apply_wisdom(p);
  MttkrpPlan left(ctx, dims, 4, 1, MttkrpMethod::TwoStep);
  EXPECT_TRUE(left.uses_left());
  p.twostep = TwoStepPref::Right;
  apply_wisdom(p);
  MttkrpPlan right(ctx, dims, 4, 1, MttkrpMethod::TwoStep);
  EXPECT_FALSE(right.uses_left());
  // A forced side beats the consult.
  MttkrpPlan forced(ctx, dims, 4, 1, MttkrpMethod::TwoStep,
                    TwoStepSide::Left);
  EXPECT_TRUE(forced.uses_left());
}

// The numerical contract of applying a profile.

TEST_F(TuneTest, McNcBlockingChangeIsBitwiseInvisible) {
  // Accumulation into any C element is ordered by the KC partitioning and
  // the in-kernel p loop only; MC/NC changes re-tile the independent
  // output blocks. A profile that moves MC/NC (KC and level unchanged)
  // must therefore reproduce MTTKRP results BIT FOR BIT.
  const std::vector<index_t> dims{24, 20, 16};
  const index_t rank = 8;
  Rng rng(11);
  const Tensor x = Tensor::random_uniform(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims)
    factors.push_back(Matrix::random_uniform(d, rank, rng));

  auto run = [&] {
    ExecContext ctx(1);
    MttkrpPlan plan(ctx, dims, rank, 1);
    Matrix m;
    plan.execute(x, factors, m);
    return m;
  };
  clear_wisdom();
  const Matrix base = run();

  WisdomProfile p = local_profile();
  p.best_simd_f64 = blas::simd_level();   // level unchanged
  p.twostep = TwoStepPref::Heuristic;     // algorithm choices unchanged:
  p.dimtree_min_order = kDefaultDimtreeMinOrder;  // ONLY blocking moves
  p.blocking = blas::gemm_blocking();
  p.blocking.mc = p.blocking.mc == 64 ? 128 : 64;   // move MC
  p.blocking.nc = p.blocking.nc == 512 ? 2048 : 512;  // move NC
  apply_wisdom(p);
  const Matrix tuned = run();

  ASSERT_EQ(tuned.rows(), base.rows());
  ASSERT_EQ(tuned.cols(), base.cols());
  for (index_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(tuned.data()[i], base.data()[i]) << "element " << i;
  }
}

TEST_F(TuneTest, KcBlockingChangeIsFitEquivalent) {
  // A KC change re-associates the k-sum, so bits may differ — but only in
  // rounding: the results must agree to a tight relative tolerance.
  const std::vector<index_t> dims{24, 20, 16};
  const index_t rank = 8;
  Rng rng(13);
  const Tensor x = Tensor::random_uniform(dims, rng);
  std::vector<Matrix> factors;
  for (index_t d : dims)
    factors.push_back(Matrix::random_uniform(d, rank, rng));

  auto run = [&] {
    ExecContext ctx(1);
    MttkrpPlan plan(ctx, dims, rank, 1);
    Matrix m;
    plan.execute(x, factors, m);
    return m;
  };
  clear_wisdom();
  const Matrix base = run();

  WisdomProfile p = local_profile();
  p.best_simd_f64 = blas::simd_level();
  p.twostep = TwoStepPref::Heuristic;
  p.dimtree_min_order = kDefaultDimtreeMinOrder;
  p.blocking = blas::gemm_blocking();
  p.blocking.kc = p.blocking.kc == 64 ? 96 : 64;  // move KC
  apply_wisdom(p);
  const Matrix tuned = run();

  EXPECT_LT(tuned.max_abs_diff(base), 1e-10 * base.norm());
}

}  // namespace
}  // namespace dmtk::tune
