// Ktensor semantics: full() materialization, norm identity, normalization,
// and the factor-match score.

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "core/cp_model.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

TEST(KtensorTest, FullMatchesElementwiseDefinition) {
  Rng rng(1);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{3, 4, 5}, 2, rng);
  K.lambda = {2.0, 0.5};
  Tensor X = K.full();
  std::array<index_t, 3> idx{};
  for (idx[0] = 0; idx[0] < 3; ++idx[0]) {
    for (idx[1] = 0; idx[1] < 4; ++idx[1]) {
      for (idx[2] = 0; idx[2] < 5; ++idx[2]) {
        double expect = 0.0;
        for (index_t c = 0; c < 2; ++c) {
          expect += K.lambda[static_cast<std::size_t>(c)] *
                    K.factors[0](idx[0], c) * K.factors[1](idx[1], c) *
                    K.factors[2](idx[2], c);
        }
        ASSERT_NEAR(X(idx), expect, 1e-13);
      }
    }
  }
}

TEST(KtensorTest, FullThreadInvariant) {
  Rng rng(2);
  Ktensor K = Ktensor::random(std::array<index_t, 4>{3, 4, 2, 5}, 3, rng);
  Tensor X1 = K.full(1);
  Tensor X4 = K.full(4);
  testing::expect_tensor_near(X1, X4, 1e-13);
}

TEST(KtensorTest, NormSquaredMatchesFullTensorNorm) {
  Rng rng(3);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{4, 5, 6}, 3, rng);
  K.lambda = {1.5, 0.7, 2.2};
  const double direct = K.full().norm_squared();
  EXPECT_NEAR(K.norm_squared(), direct, 1e-8 * direct);
}

TEST(KtensorTest, Rank1OuterProduct) {
  // Rank-1 sanity: X(i,j) = u(i) v(j).
  Ktensor K;
  K.factors.emplace_back(2, 1);
  K.factors.emplace_back(3, 1);
  K.factors[0](0, 0) = 1.0;
  K.factors[0](1, 0) = 2.0;
  K.factors[1](0, 0) = 3.0;
  K.factors[1](1, 0) = 4.0;
  K.factors[1](2, 0) = 5.0;
  Tensor X = K.full();
  const std::array<index_t, 2> idx{1, 2};
  EXPECT_DOUBLE_EQ(X(idx), 10.0);
}

TEST(KtensorTest, NormalizeColumnsPreservesModel) {
  Rng rng(4);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{3, 4, 5}, 2, rng);
  Tensor before = K.full();
  K.normalize_columns();
  Tensor after = K.full();
  testing::expect_tensor_near(before, after, 1e-12);
  // Columns are now unit length.
  for (const Matrix& U : K.factors) {
    for (index_t c = 0; c < U.cols(); ++c) {
      double n2 = 0.0;
      for (index_t i = 0; i < U.rows(); ++i) n2 += U(i, c) * U(i, c);
      EXPECT_NEAR(std::sqrt(n2), 1.0, 1e-12);
    }
  }
}

TEST(KtensorTest, DimsReflectFactors) {
  Rng rng(5);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{7, 8, 9}, 4, rng);
  const std::vector<index_t> d = K.dims();
  EXPECT_EQ(d, (std::vector<index_t>{7, 8, 9}));
  EXPECT_EQ(K.order(), 3);
  EXPECT_EQ(K.rank(), 4);
}

TEST(KtensorTest, ValidateCatchesRankMismatch) {
  Ktensor K;
  K.factors.emplace_back(3, 2);
  K.factors.emplace_back(4, 3);  // different rank
  EXPECT_THROW(K.validate(), DimensionError);
}

TEST(KtensorTest, ValidateCatchesLambdaSize) {
  Ktensor K;
  K.factors.emplace_back(3, 2);
  K.lambda = {1.0};  // size 1 vs rank 2
  EXPECT_THROW(K.validate(), DimensionError);
}

TEST(FactorMatchScore, IdenticalModelsScoreOne) {
  Rng rng(6);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{5, 6, 7}, 3, rng);
  EXPECT_NEAR(factor_match_score(K, K), 1.0, 1e-12);
}

TEST(FactorMatchScore, PermutedComponentsStillScoreOne) {
  Rng rng(7);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{5, 6, 7}, 3, rng);
  Ktensor P = K;
  // Swap components 0 and 2 in every factor.
  for (Matrix& U : P.factors) {
    for (index_t i = 0; i < U.rows(); ++i) std::swap(U(i, 0), U(i, 2));
  }
  EXPECT_NEAR(factor_match_score(K, P), 1.0, 1e-12);
}

TEST(FactorMatchScore, SignFlipsIgnored) {
  Rng rng(8);
  Ktensor K = Ktensor::random(std::array<index_t, 2>{5, 6}, 2, rng);
  Ktensor F = K;
  for (index_t i = 0; i < F.factors[0].rows(); ++i) {
    F.factors[0](i, 0) = -F.factors[0](i, 0);
  }
  EXPECT_NEAR(factor_match_score(K, F), 1.0, 1e-12);
}

TEST(FactorMatchScore, UnrelatedModelsScoreLow) {
  Rng rng(9);
  Ktensor A = Ktensor::random(std::array<index_t, 3>{40, 40, 40}, 2, rng);
  Ktensor B = Ktensor::random(std::array<index_t, 3>{40, 40, 40}, 2, rng);
  // Uniform [0,1) vectors are positively correlated (~0.75 cosine each
  // mode); cubing drives unrelated models well below the ~1.0 of a match.
  EXPECT_LT(factor_match_score(A, B), 0.85);
}

TEST(FactorMatchScore, ShapeMismatchThrows) {
  Rng rng(10);
  Ktensor A = Ktensor::random(std::array<index_t, 2>{3, 4}, 2, rng);
  Ktensor B = Ktensor::random(std::array<index_t, 2>{3, 4}, 3, rng);
  EXPECT_THROW((void)factor_match_score(A, B), DimensionError);
}

}  // namespace
}  // namespace dmtk
