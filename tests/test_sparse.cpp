// COO sparse tensor, SPLATT-style sparse MTTKRP, and sparse CP-ALS: all
// validated against the dense machinery on sparsified dense tensors.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/mttkrp.hpp"
#include "sparse/sparse_tensor.hpp"
#include "test_helpers.hpp"

namespace dmtk::sparse {
namespace {

using dmtk::testing::random_factors;

/// A dense tensor with ~`density` of its entries nonzero.
Tensor sparse_dense(std::span<const index_t> dims, double density, Rng& rng) {
  Tensor X({dims.begin(), dims.end()});
  for (index_t l = 0; l < X.numel(); ++l) {
    if (rng.uniform() < density) X[l] = rng.uniform(-1.0, 1.0);
  }
  return X;
}

TEST(SparseTensorTest, FromDenseToDenseRoundTrip) {
  Rng rng(1);
  Tensor X = sparse_dense(std::array<index_t, 3>{5, 6, 4}, 0.2, rng);
  SparseTensor S = SparseTensor::from_dense(X);
  Tensor Y = S.to_dense();
  dmtk::testing::expect_tensor_near(X, Y, 0.0);
}

TEST(SparseTensorTest, NnzMatchesDensity) {
  Rng rng(2);
  Tensor X = sparse_dense(std::array<index_t, 3>{10, 10, 10}, 0.1, rng);
  SparseTensor S = SparseTensor::from_dense(X);
  index_t expect = 0;
  for (index_t l = 0; l < X.numel(); ++l) {
    if (X[l] != 0.0) ++expect;
  }
  EXPECT_EQ(S.nnz(), expect);
  EXPECT_EQ(S.numel(), 1000);
}

TEST(SparseTensorTest, ThresholdDropsSmallEntries) {
  Tensor X({2, 2});
  X[0] = 0.05;
  X[1] = 0.5;
  X[2] = -0.04;
  X[3] = -0.6;
  SparseTensor S = SparseTensor::from_dense(X, 0.1);
  EXPECT_EQ(S.nnz(), 2);
}

TEST(SparseTensorTest, NormSquaredMatchesDense) {
  Rng rng(3);
  Tensor X = sparse_dense(std::array<index_t, 3>{6, 5, 7}, 0.3, rng);
  SparseTensor S = SparseTensor::from_dense(X);
  EXPECT_NEAR(S.norm_squared(), X.norm_squared(), 1e-12);
}

TEST(SparseTensorTest, DuplicatesAccumulate) {
  SparseTensor S({3, 3});
  const std::array<index_t, 2> idx{1, 2};
  S.push_back(idx, 2.0);
  S.push_back(idx, 0.5);
  Tensor X = S.to_dense();
  EXPECT_DOUBLE_EQ(X(std::array<index_t, 2>{1, 2}), 2.5);
}

TEST(SparseTensorTest, OutOfRangeCoordinateThrows) {
  SparseTensor S({2, 2});
  const std::array<index_t, 2> bad{2, 0};
  EXPECT_THROW(S.push_back(bad, 1.0), DimensionError);
  const std::array<index_t, 3> wrong_order{0, 0, 0};
  EXPECT_THROW(S.push_back(wrong_order, 1.0), DimensionError);
}

TEST(SparseTensorTest, RandomHasRequestedNnz) {
  Rng rng(4);
  SparseTensor S = SparseTensor::random({8, 8, 8}, 100, rng);
  EXPECT_EQ(S.nnz(), 100);
  for (index_t k = 0; k < S.nnz(); ++k) {
    for (index_t n = 0; n < 3; ++n) {
      EXPECT_GE(S.coord(n, k), 0);
      EXPECT_LT(S.coord(n, k), 8);
    }
  }
}

class SparseMttkrpModes : public ::testing::TestWithParam<index_t> {};

TEST_P(SparseMttkrpModes, MatchesDenseReference) {
  const index_t mode = GetParam();
  Rng rng(10 + mode);
  Tensor X = sparse_dense(std::array<index_t, 4>{5, 4, 6, 3}, 0.15, rng);
  SparseTensor S = SparseTensor::from_dense(X);
  const std::vector<Matrix> fs = random_factors(X.dims(), 3, rng);
  Matrix ref = dmtk::mttkrp(X, fs, mode, MttkrpMethod::Reference);
  Matrix got;
  mttkrp(S, fs, mode, got, 2);
  dmtk::testing::expect_matrix_near(ref, got, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllModes, SparseMttkrpModes,
                         ::testing::Values<index_t>(0, 1, 2, 3));

TEST(SparseMttkrp, EmptyTensorGivesZero) {
  SparseTensor S({4, 5, 6});
  Rng rng(11);
  const std::vector<Matrix> fs =
      random_factors(std::array<index_t, 3>{4, 5, 6}, 2, rng);
  Matrix M;
  mttkrp(S, fs, 1, M);
  EXPECT_EQ(M.rows(), 5);
  for (double v : M.span()) EXPECT_EQ(v, 0.0);
}

TEST(SparseMttkrp, ThreadInvariant) {
  Rng rng(12);
  SparseTensor S = SparseTensor::random({10, 12, 9}, 500, rng);
  const std::vector<Matrix> fs =
      random_factors(std::array<index_t, 3>{10, 12, 9}, 4, rng);
  Matrix M1, M4;
  mttkrp(S, fs, 1, M1, 1);
  mttkrp(S, fs, 1, M4, 4);
  dmtk::testing::expect_matrix_near(M1, M4, 1e-12);
}

TEST(SparseMttkrp, ValidatesInputs) {
  Rng rng(13);
  SparseTensor S = SparseTensor::random({4, 4, 4}, 10, rng);
  std::vector<Matrix> fs = random_factors(std::array<index_t, 3>{4, 4, 4}, 2,
                                          rng);
  Matrix M;
  EXPECT_THROW(mttkrp(S, fs, 3, M), DimensionError);
  fs[1] = Matrix(5, 2);
  EXPECT_THROW(mttkrp(S, fs, 0, M), DimensionError);
}

TEST(SparseCpAls, MatchesDenseCpAlsOnSameData) {
  Rng rng(14);
  Tensor X = sparse_dense(std::array<index_t, 3>{8, 7, 6}, 0.25, rng);
  SparseTensor S = SparseTensor::from_dense(X);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 4;
  opts.tol = 0.0;
  opts.seed = 3;
  const CpAlsResult dense_r = dmtk::cp_als(X, opts);
  const CpAlsResult sparse_r = cp_als(S, opts);
  EXPECT_NEAR(dense_r.final_fit, sparse_r.final_fit, 1e-9);
  for (index_t n = 0; n < 3; ++n) {
    EXPECT_LT(dense_r.model.factors[static_cast<std::size_t>(n)].max_abs_diff(
                  sparse_r.model.factors[static_cast<std::size_t>(n)]),
              1e-7);
  }
}

TEST(SparseCpAls, RecoversSparseLowRankStructure) {
  // Low-rank with sparse factors -> sparse tensor with exact CP structure.
  Rng rng(15);
  Ktensor truth;
  for (index_t d : {index_t{12}, index_t{10}, index_t{8}}) {
    Matrix U(d, 2);
    for (index_t c = 0; c < 2; ++c) {
      for (index_t i = 0; i < d; ++i) {
        U(i, c) = rng.uniform() < 0.4 ? rng.uniform(0.5, 1.5) : 0.0;
      }
    }
    truth.factors.push_back(std::move(U));
  }
  truth.lambda = {1.0, 1.0};
  SparseTensor S = SparseTensor::from_dense(truth.full());
  ASSERT_GT(S.nnz(), 0);
  ASSERT_LT(S.nnz(), S.numel());
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 200;
  opts.tol = 1e-10;
  const CpAlsResult r = cp_als(S, opts);
  EXPECT_GT(r.final_fit, 0.999);
}

}  // namespace
}  // namespace dmtk::sparse
