// Binary serialization round trips, format validation, and CSV export.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/tensor_io.hpp"
#include "test_helpers.hpp"

namespace dmtk::io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dmtk_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const char* name) const { return dir_ / name; }

  fs::path dir_;
};

TEST_F(IoTest, TensorRoundTripBitExact) {
  Rng rng(1);
  Tensor X = Tensor::random_uniform({3, 5, 4}, rng);
  write_tensor(path("x.dten"), X);
  Tensor Y = read_tensor(path("x.dten"));
  ASSERT_EQ(Y.order(), 3);
  EXPECT_DOUBLE_EQ(X.max_abs_diff(Y), 0.0);
}

TEST_F(IoTest, MatrixRoundTripBitExact) {
  Rng rng(2);
  Matrix M = Matrix::random_normal(7, 3, rng);
  write_matrix(path("m.dmat"), M);
  Matrix R = read_matrix(path("m.dmat"));
  EXPECT_DOUBLE_EQ(M.max_abs_diff(R), 0.0);
}

TEST_F(IoTest, KtensorRoundTrip) {
  Rng rng(3);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{4, 5, 6}, 2, rng);
  K.lambda = {3.5, 0.25};
  write_ktensor(path("k.dktn"), K);
  Ktensor R = read_ktensor(path("k.dktn"));
  ASSERT_EQ(R.order(), 3);
  ASSERT_EQ(R.rank(), 2);
  EXPECT_DOUBLE_EQ(R.lambda[0], 3.5);
  EXPECT_DOUBLE_EQ(R.lambda[1], 0.25);
  for (index_t n = 0; n < 3; ++n) {
    EXPECT_DOUBLE_EQ(K.factors[static_cast<std::size_t>(n)].max_abs_diff(
                         R.factors[static_cast<std::size_t>(n)]),
                     0.0);
  }
}

TEST_F(IoTest, KtensorWithoutLambdaGetsOnes) {
  Rng rng(4);
  Ktensor K = Ktensor::random(std::array<index_t, 2>{3, 4}, 2, rng);
  K.lambda.clear();
  write_ktensor(path("k.dktn"), K);
  Ktensor R = read_ktensor(path("k.dktn"));
  ASSERT_EQ(R.lambda.size(), 2u);
  EXPECT_DOUBLE_EQ(R.lambda[0], 1.0);
}

TEST_F(IoTest, WrongMagicRejected) {
  Rng rng(5);
  Matrix M = Matrix::random_uniform(2, 2, rng);
  write_matrix(path("m.dmat"), M);
  EXPECT_THROW(read_tensor(path("m.dmat")), IoError);
  EXPECT_THROW(read_ktensor(path("m.dmat")), IoError);
}

TEST_F(IoTest, TruncatedFileRejected) {
  Rng rng(6);
  Tensor X = Tensor::random_uniform({10, 10}, rng);
  write_tensor(path("x.dten"), X);
  fs::resize_file(path("x.dten"), 64);  // chop the payload
  EXPECT_THROW(read_tensor(path("x.dten")), IoError);
}

TEST_F(IoTest, GarbageFileRejected) {
  std::ofstream f(path("junk.bin"), std::ios::binary);
  f << "this is not a dmtk file at all";
  f.close();
  EXPECT_THROW(read_tensor(path("junk.bin")), IoError);
}

TEST_F(IoTest, MissingFileRejected) {
  EXPECT_THROW(read_tensor(path("does_not_exist")), IoError);
  EXPECT_THROW(read_matrix(path("does_not_exist")), IoError);
}

TEST_F(IoTest, CsvExportParsesBack) {
  Matrix M(2, 3);
  M(0, 0) = 1.5;
  M(0, 1) = -2.0;
  M(0, 2) = 0.125;
  M(1, 0) = 1e-7;
  M(1, 1) = 3.0;
  M(1, 2) = -4.5;
  export_csv(path("m.csv"), M);
  std::ifstream f(path("m.csv"));
  std::string line1, line2, extra;
  ASSERT_TRUE(std::getline(f, line1));
  ASSERT_TRUE(std::getline(f, line2));
  EXPECT_FALSE(std::getline(f, extra));
  double a, b, c;
  ASSERT_EQ(std::sscanf(line1.c_str(), "%lf,%lf,%lf", &a, &b, &c), 3);
  EXPECT_DOUBLE_EQ(a, 1.5);
  EXPECT_DOUBLE_EQ(b, -2.0);
  EXPECT_DOUBLE_EQ(c, 0.125);
  ASSERT_EQ(std::sscanf(line2.c_str(), "%lf,%lf,%lf", &a, &b, &c), 3);
  EXPECT_DOUBLE_EQ(a, 1e-7);
}

TEST_F(IoTest, LargeTensorRoundTrip) {
  Rng rng(7);
  Tensor X = Tensor::random_uniform({32, 32, 32}, rng);
  write_tensor(path("big.dten"), X);
  Tensor Y = read_tensor(path("big.dten"));
  EXPECT_DOUBLE_EQ(X.max_abs_diff(Y), 0.0);
}

// ---------------------------------------------------------------------------
// FROSTT-style .tns sparse text files.
// ---------------------------------------------------------------------------

void write_text(const fs::path& p, const char* text) {
  std::ofstream f(p);
  f << text;
}

TEST_F(IoTest, TnsRoundTripPreservesEntriesBitExact) {
  Rng rng(8);
  const sparse::SparseTensor S =
      sparse::SparseTensor::random({6, 9, 4}, 50, rng);
  write_tns(path("s.tns"), S);
  const sparse::SparseTensor T = read_tns(path("s.tns"));
  ASSERT_EQ(T.order(), 3);
  ASSERT_EQ(T.nnz(), S.nnz());
  // Mode sizes are coordinate maxima, so they can shrink relative to the
  // declared dims — but never grow.
  for (index_t n = 0; n < 3; ++n) EXPECT_LE(T.dim(n), S.dim(n));
  for (index_t k = 0; k < S.nnz(); ++k) {
    for (index_t n = 0; n < 3; ++n) EXPECT_EQ(T.coord(n, k), S.coord(n, k));
    EXPECT_EQ(T.value(k), S.value(k));  // %.17g is lossless
  }
}

TEST_F(IoTest, TnsDuplicatesSurviveTheRoundTrip) {
  sparse::SparseTensor S({3, 3});
  const std::array<index_t, 2> idx{1, 2};
  S.push_back(idx, 2.0);
  S.push_back(idx, 0.5);
  write_tns(path("dup.tns"), S);
  const sparse::SparseTensor T = read_tns(path("dup.tns"));
  EXPECT_EQ(T.nnz(), 2);  // duplicates preserved, still additive
  EXPECT_DOUBLE_EQ(T.to_dense()(std::array<index_t, 2>{1, 2}), 2.5);
}

TEST_F(IoTest, TnsParsesCommentsBlanksAndOneBasedCoords) {
  write_text(path("c.tns"),
             "# a FROSTT-style file\n"
             "\n"
             "1 1 1 1.5\n"
             "  3 2 4   -2.25  # trailing comment\n");
  const sparse::SparseTensor S = read_tns(path("c.tns"));
  EXPECT_EQ(S.order(), 3);
  EXPECT_EQ(S.nnz(), 2);
  EXPECT_EQ(S.dim(0), 3);
  EXPECT_EQ(S.dim(1), 2);
  EXPECT_EQ(S.dim(2), 4);
  EXPECT_EQ(S.coord(0, 1), 2);  // 1-based in the file, 0-based in memory
  EXPECT_DOUBLE_EQ(S.value(1), -2.25);
}

TEST_F(IoTest, TnsMalformedInputsRejectedWithLineNumbers) {
  // Field-count mismatch against the first data line.
  write_text(path("m1.tns"), "1 1 1 1.0\n2 2 0.5\n");
  EXPECT_THROW(read_tns(path("m1.tns")), IoError);
  // Non-numeric coordinate.
  write_text(path("m2.tns"), "1 x 1 1.0\n");
  EXPECT_THROW(read_tns(path("m2.tns")), IoError);
  // Non-numeric value.
  write_text(path("m3.tns"), "1 1 1 abc\n");
  EXPECT_THROW(read_tns(path("m3.tns")), IoError);
  // Zero (or negative) coordinate: the format is 1-based.
  write_text(path("m4.tns"), "0 1 1 1.0\n");
  EXPECT_THROW(read_tns(path("m4.tns")), IoError);
  write_text(path("m5.tns"), "1 -2 1 1.0\n");
  EXPECT_THROW(read_tns(path("m5.tns")), IoError);
  // A value-only line (no coordinates).
  write_text(path("m6.tns"), "1.0\n");
  EXPECT_THROW(read_tns(path("m6.tns")), IoError);
  // Empty / comment-only files have no data to infer a shape from.
  write_text(path("m7.tns"), "");
  EXPECT_THROW(read_tns(path("m7.tns")), IoError);
  write_text(path("m8.tns"), "# nothing\n\n");
  EXPECT_THROW(read_tns(path("m8.tns")), IoError);
  // Coordinates that overflow long long (strtoll clamps with ERANGE) or
  // exceed the library's extent cap: either would otherwise turn into a
  // silently absurd shape request downstream.
  write_text(path("m9.tns"), "99999999999999999999999999 1 1 1.0\n");
  EXPECT_THROW(read_tns(path("m9.tns")), IoError);
  write_text(path("m10.tns"), "1 1099511627777 1 1.0\n");  // 2^40 + 1
  EXPECT_THROW(read_tns(path("m10.tns")), IoError);
  // The error message carries the offending line number.
  try {
    read_tns(path("m2.tns"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find(":1:"), std::string::npos);
  }
  for (const char* overflow_file : {"m9.tns", "m10.tns"}) {
    try {
      read_tns(path(overflow_file));
      FAIL() << "expected IoError";
    } catch (const IoError& e) {
      EXPECT_NE(std::string(e.what()).find(":1:"), std::string::npos)
          << overflow_file;
      EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos)
          << overflow_file;
    }
  }
  EXPECT_THROW(read_tns(path("absent.tns")), IoError);
}

TEST_F(IoTest, TnsRefusesToWriteAnEmptyTensor) {
  // The headerless format cannot represent nnz == 0 (read_tns would have
  // nothing to infer the shape from), so writing must fail loudly instead
  // of producing an unreadable file.
  const sparse::SparseTensor S({4, 5, 6});
  EXPECT_THROW(write_tns(path("empty.tns"), S), IoError);
  EXPECT_FALSE(fs::exists(path("empty.tns")));
}

}  // namespace
}  // namespace dmtk::io
