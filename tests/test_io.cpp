// Binary serialization round trips, format validation, and CSV export.

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/tensor_io.hpp"
#include "test_helpers.hpp"

namespace dmtk::io {
namespace {

namespace fs = std::filesystem;

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dmtk_io_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path path(const char* name) const { return dir_ / name; }

  fs::path dir_;
};

TEST_F(IoTest, TensorRoundTripBitExact) {
  Rng rng(1);
  Tensor X = Tensor::random_uniform({3, 5, 4}, rng);
  write_tensor(path("x.dten"), X);
  Tensor Y = read_tensor(path("x.dten"));
  ASSERT_EQ(Y.order(), 3);
  EXPECT_DOUBLE_EQ(X.max_abs_diff(Y), 0.0);
}

TEST_F(IoTest, MatrixRoundTripBitExact) {
  Rng rng(2);
  Matrix M = Matrix::random_normal(7, 3, rng);
  write_matrix(path("m.dmat"), M);
  Matrix R = read_matrix(path("m.dmat"));
  EXPECT_DOUBLE_EQ(M.max_abs_diff(R), 0.0);
}

TEST_F(IoTest, KtensorRoundTrip) {
  Rng rng(3);
  Ktensor K = Ktensor::random(std::array<index_t, 3>{4, 5, 6}, 2, rng);
  K.lambda = {3.5, 0.25};
  write_ktensor(path("k.dktn"), K);
  Ktensor R = read_ktensor(path("k.dktn"));
  ASSERT_EQ(R.order(), 3);
  ASSERT_EQ(R.rank(), 2);
  EXPECT_DOUBLE_EQ(R.lambda[0], 3.5);
  EXPECT_DOUBLE_EQ(R.lambda[1], 0.25);
  for (index_t n = 0; n < 3; ++n) {
    EXPECT_DOUBLE_EQ(K.factors[static_cast<std::size_t>(n)].max_abs_diff(
                         R.factors[static_cast<std::size_t>(n)]),
                     0.0);
  }
}

TEST_F(IoTest, KtensorWithoutLambdaGetsOnes) {
  Rng rng(4);
  Ktensor K = Ktensor::random(std::array<index_t, 2>{3, 4}, 2, rng);
  K.lambda.clear();
  write_ktensor(path("k.dktn"), K);
  Ktensor R = read_ktensor(path("k.dktn"));
  ASSERT_EQ(R.lambda.size(), 2u);
  EXPECT_DOUBLE_EQ(R.lambda[0], 1.0);
}

TEST_F(IoTest, WrongMagicRejected) {
  Rng rng(5);
  Matrix M = Matrix::random_uniform(2, 2, rng);
  write_matrix(path("m.dmat"), M);
  EXPECT_THROW(read_tensor(path("m.dmat")), IoError);
  EXPECT_THROW(read_ktensor(path("m.dmat")), IoError);
}

TEST_F(IoTest, TruncatedFileRejected) {
  Rng rng(6);
  Tensor X = Tensor::random_uniform({10, 10}, rng);
  write_tensor(path("x.dten"), X);
  fs::resize_file(path("x.dten"), 64);  // chop the payload
  EXPECT_THROW(read_tensor(path("x.dten")), IoError);
}

TEST_F(IoTest, GarbageFileRejected) {
  std::ofstream f(path("junk.bin"), std::ios::binary);
  f << "this is not a dmtk file at all";
  f.close();
  EXPECT_THROW(read_tensor(path("junk.bin")), IoError);
}

TEST_F(IoTest, MissingFileRejected) {
  EXPECT_THROW(read_tensor(path("does_not_exist")), IoError);
  EXPECT_THROW(read_matrix(path("does_not_exist")), IoError);
}

TEST_F(IoTest, CsvExportParsesBack) {
  Matrix M(2, 3);
  M(0, 0) = 1.5;
  M(0, 1) = -2.0;
  M(0, 2) = 0.125;
  M(1, 0) = 1e-7;
  M(1, 1) = 3.0;
  M(1, 2) = -4.5;
  export_csv(path("m.csv"), M);
  std::ifstream f(path("m.csv"));
  std::string line1, line2, extra;
  ASSERT_TRUE(std::getline(f, line1));
  ASSERT_TRUE(std::getline(f, line2));
  EXPECT_FALSE(std::getline(f, extra));
  double a, b, c;
  ASSERT_EQ(std::sscanf(line1.c_str(), "%lf,%lf,%lf", &a, &b, &c), 3);
  EXPECT_DOUBLE_EQ(a, 1.5);
  EXPECT_DOUBLE_EQ(b, -2.0);
  EXPECT_DOUBLE_EQ(c, 0.125);
  ASSERT_EQ(std::sscanf(line2.c_str(), "%lf,%lf,%lf", &a, &b, &c), 3);
  EXPECT_DOUBLE_EQ(a, 1e-7);
}

TEST_F(IoTest, LargeTensorRoundTrip) {
  Rng rng(7);
  Tensor X = Tensor::random_uniform({32, 32, 32}, rng);
  write_tensor(path("big.dten"), X);
  Tensor Y = read_tensor(path("big.dten"));
  EXPECT_DOUBLE_EQ(X.max_abs_diff(Y), 0.0);
}

}  // namespace
}  // namespace dmtk::io
