// TTV / TTM / multi-TTV kernels.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/krp.hpp"
#include "core/ttv.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

/// Elementwise TTV oracle.
Tensor naive_ttv(const Tensor& X, std::span<const double> v, index_t mode) {
  std::vector<index_t> ydims;
  for (index_t k = 0; k < X.order(); ++k) {
    if (k != mode) ydims.push_back(X.dim(k));
  }
  Tensor Y(ydims);
  std::vector<index_t> xi(static_cast<std::size_t>(X.order()));
  std::vector<index_t> yi(ydims.size());
  for (index_t l = 0; l < X.numel(); ++l) {
    index_t rem = l;
    for (index_t k = 0; k < X.order(); ++k) {
      xi[static_cast<std::size_t>(k)] = rem % X.dim(k);
      rem /= X.dim(k);
    }
    std::size_t o = 0;
    for (index_t k = 0; k < X.order(); ++k) {
      if (k != mode) yi[o++] = xi[static_cast<std::size_t>(k)];
    }
    Y(yi) += X[l] * v[static_cast<std::size_t>(
                        xi[static_cast<std::size_t>(mode)])];
  }
  return Y;
}

class TtvModes : public ::testing::TestWithParam<index_t> {};

TEST_P(TtvModes, MatchesNaiveOracle) {
  const index_t mode = GetParam();
  Rng rng(20 + mode);
  Tensor X = Tensor::random_uniform({3, 4, 5, 2}, rng);
  std::vector<double> v(static_cast<std::size_t>(X.dim(mode)));
  fill_uniform(v, rng, -1.0, 1.0);
  Tensor Y = ttv(X, v, mode);
  Tensor Yref = naive_ttv(X, v, mode);
  testing::expect_tensor_near(Y, Yref, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllModes, TtvModes,
                         ::testing::Values<index_t>(0, 1, 2, 3));

TEST(Ttv, ThreadInvariant) {
  Rng rng(21);
  Tensor X = Tensor::random_uniform({4, 6, 5}, rng);
  std::vector<double> v(6);
  fill_uniform(v, rng);
  Tensor Y1 = ttv(X, v, 1, 1);
  Tensor Y4 = ttv(X, v, 1, 4);
  testing::expect_tensor_near(Y1, Y4, 1e-13);
}

TEST(Ttv, WrongLengthThrows) {
  Tensor X({3, 4});
  std::vector<double> v(5);
  EXPECT_THROW(ttv(X, v, 0), DimensionError);
}

TEST(Ttv, OneWayTensorThrows) {
  Tensor X({4});
  std::vector<double> v(4);
  EXPECT_THROW(ttv(X, v, 0), DimensionError);
}

TEST(Ttm, MatchesIteratedTtv) {
  // X x_n M: column r of the result's mode-n fibers equals ttv with M(:,r).
  Rng rng(22);
  Tensor X = Tensor::random_uniform({3, 4, 5}, rng);
  const index_t mode = 1;
  Matrix M = Matrix::random_uniform(4, 2, rng);
  Tensor Y = ttm(X, M, mode);
  ASSERT_EQ(Y.dim(0), 3);
  ASSERT_EQ(Y.dim(mode), 2);
  ASSERT_EQ(Y.dim(2), 5);
  for (index_t r = 0; r < 2; ++r) {
    Tensor Yr = ttv(X, M.col(r), mode);
    std::array<index_t, 3> yi{};
    for (yi[0] = 0; yi[0] < 3; ++yi[0]) {
      for (yi[2] = 0; yi[2] < 5; ++yi[2]) {
        yi[1] = r;
        const std::array<index_t, 2> ri{yi[0], yi[2]};
        ASSERT_NEAR(Y(yi), Yr(ri), 1e-12);
      }
    }
  }
}

TEST(Ttm, IdentityIsNoop) {
  Rng rng(23);
  Tensor X = Tensor::random_uniform({3, 4, 2}, rng);
  Tensor Y = ttm(X, Matrix::identity(4), 1);
  testing::expect_tensor_near(X, Y, 1e-13);
}

TEST(Ttm, WrongRowsThrows) {
  Tensor X({3, 4});
  Matrix M(5, 2);
  EXPECT_THROW(ttm(X, M, 1), DimensionError);
}

TEST(MultiTtv, RightVariantMatchesPerComponentTtv) {
  // Construct R as C stacked (I_Ln x I_n) subtensors and verify each output
  // column is the corresponding TTV against the left-KRP column.
  Rng rng(24);
  const index_t In = 4, ILn = 6, C = 3;
  Matrix R(ILn * In, C);  // each column: subtensor (ILn x In col-major)
  fill_uniform(R.span(), rng, -1.0, 1.0);
  Matrix KLt(C, ILn);
  fill_uniform(KLt.span(), rng, -1.0, 1.0);
  Matrix M(In, C);
  multi_ttv_right(R.data(), In, ILn, C, KLt.data(), KLt.ld(), M);
  for (index_t c = 0; c < C; ++c) {
    for (index_t i = 0; i < In; ++i) {
      double expect = 0.0;
      for (index_t rl = 0; rl < ILn; ++rl) {
        expect += R(rl + i * ILn, c) * KLt(c, rl);
      }
      ASSERT_NEAR(M(i, c), expect, 1e-12);
    }
  }
}

TEST(MultiTtv, LeftVariantMatchesPerComponentTtv) {
  Rng rng(25);
  const index_t In = 5, IRn = 4, C = 3;
  Matrix L(In * IRn, C);  // each column: subtensor (In x IRn col-major)
  fill_uniform(L.span(), rng, -1.0, 1.0);
  Matrix KRt(C, IRn);
  fill_uniform(KRt.span(), rng, -1.0, 1.0);
  Matrix M(In, C);
  multi_ttv_left(L.data(), In, IRn, C, KRt.data(), KRt.ld(), M);
  for (index_t c = 0; c < C; ++c) {
    for (index_t i = 0; i < In; ++i) {
      double expect = 0.0;
      for (index_t rr = 0; rr < IRn; ++rr) {
        expect += L(i + rr * In, c) * KRt(c, rr);
      }
      ASSERT_NEAR(M(i, c), expect, 1e-12);
    }
  }
}

TEST(MultiTtv, ThreadInvariantBothBranches) {
  // C >= threads takes the per-component path, C < threads the internal-BLAS
  // path; both must agree.
  Rng rng(26);
  const index_t In = 7, ILn = 9, C = 2;
  Matrix R(ILn * In, C);
  fill_uniform(R.span(), rng);
  Matrix KLt(C, ILn);
  fill_uniform(KLt.span(), rng);
  Matrix M1(In, C), M4(In, C);
  multi_ttv_right(R.data(), In, ILn, C, KLt.data(), KLt.ld(), M1, 1);
  multi_ttv_right(R.data(), In, ILn, C, KLt.data(), KLt.ld(), M4, 4);
  testing::expect_matrix_near(M1, M4, 1e-13);
}

TEST(MultiTtv, OutputShapeMismatchThrows) {
  Matrix R(12, 2), KLt(2, 3), M(5, 2);  // In should be 4
  EXPECT_THROW(
      multi_ttv_right(R.data(), 4, 3, 2, KLt.data(), KLt.ld(), M),
      DimensionError);
}

}  // namespace
}  // namespace dmtk
