/// Unit tests for the serve building blocks: the protocol JSON value
/// (strict parse, deterministic dump), the worker-private plan cache
/// (hit counting, LRU eviction order, byte budget, disabled mode), and
/// the bounded job queue (admission control, same-key extraction,
/// graceful drain). The socket-level behavior is covered by
/// test_serve.cpp; these run single-threaded against the components.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "exec/exec_context.hpp"
#include "serve/job_queue.hpp"
#include "serve/json.hpp"
#include "serve/plan_cache.hpp"

namespace dmtk::serve {
namespace {

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(ServeJson, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_FALSE(Json::parse("false").as_bool());
  EXPECT_EQ(Json::parse("42").as_number(), 42.0);
  EXPECT_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"hi\\n\\u0041\"").as_string(), "hi\nA");
}

TEST(ServeJson, RoundTripsNestedValues) {
  const std::string text =
      R"({"a":[1,2.5,true,null],"b":{"c":"x","d":-7},"e":""})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.dump(), text);  // keys already sorted, integrals undecorated
  EXPECT_EQ(Json::parse(j.dump()), j);
}

TEST(ServeJson, DumpSortsKeysAndEscapes) {
  Json j;
  j.set("zeta", Json(1));
  j.set("alpha", Json("tab\there"));
  EXPECT_EQ(j.dump(), "{\"alpha\":\"tab\\there\",\"zeta\":1}");
}

TEST(ServeJson, DoublesRoundTripBitExactly) {
  const double v = 0.1 + 0.2;  // not representable prettily
  Json j;
  j.set("x", Json(v));
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.find("x")->as_number(), v);
}

TEST(ServeJson, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",       "[1,]",     "{\"a\":}",    "nul",
      "01",         "1 2",     "\"\\q\"",  "{\"a\":1,}",  "[1 2]",
      "{\"a\" 1}",  "+1",      "\"\x01\"", "{1:2}",       "tru",
  };
  for (const char* t : bad) {
    EXPECT_THROW(Json::parse(t), JsonError) << "input: " << t;
  }
}

TEST(ServeJson, RejectsDuplicateKeysAndDeepNesting) {
  EXPECT_THROW(Json::parse(R"({"a":1,"a":2})"), JsonError);
  std::string deep;
  for (int i = 0; i < Json::kMaxDepth + 1; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < Json::kMaxDepth + 1; ++i) deep += ']';
  EXPECT_THROW(Json::parse(deep), JsonError);
}

TEST(ServeJson, FindIsNullSafeOnNonObjects) {
  EXPECT_EQ(Json(3).find("a"), nullptr);
  Json obj;
  obj.set("a", Json(1));
  EXPECT_EQ(obj.find("missing"), nullptr);
  ASSERT_NE(obj.find("a"), nullptr);
  EXPECT_EQ(obj.find("a")->as_number(), 1.0);
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

PlanKey key_for(std::vector<index_t> dims, index_t rank, bool f32 = false) {
  PlanKey k;
  k.dims = std::move(dims);
  k.rank = rank;
  k.scheme = SweepScheme::PerMode;
  k.f32 = f32;
  return k;
}

TEST(ServePlanCache, CountsHitsAndMisses) {
  ExecContext ctx(1);
  PlanCache cache(8, std::size_t{1} << 30);
  const PlanKey k = key_for({6, 5, 4}, 2);

  bool built = false;
  PlanCache::Entry* e1 = cache.get_or_build(k, ctx, &built);
  ASSERT_NE(e1, nullptr);
  EXPECT_TRUE(built);
  ASSERT_NE(e1->f64, nullptr);
  EXPECT_EQ(e1->f32, nullptr);

  PlanCache::Entry* e2 = cache.get_or_build(k, ctx, &built);
  EXPECT_EQ(e2, e1);
  EXPECT_FALSE(built);

  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST(ServePlanCache, PrecisionSplitsTheKey) {
  ExecContext ctx(1);
  PlanCache cache(8, std::size_t{1} << 30);
  cache.get_or_build(key_for({6, 5, 4}, 2, false), ctx);
  PlanCache::Entry* ef = cache.get_or_build(key_for({6, 5, 4}, 2, true), ctx);
  ASSERT_NE(ef, nullptr);
  EXPECT_EQ(ef->f64, nullptr);
  ASSERT_NE(ef->f32, nullptr);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(ServePlanCache, EvictsLeastRecentlyUsedAtEntryCap) {
  ExecContext ctx(1);
  PlanCache cache(2, std::size_t{1} << 30);
  const PlanKey a = key_for({6, 5, 4}, 2);
  const PlanKey b = key_for({7, 5, 4}, 2);
  const PlanKey c = key_for({8, 5, 4}, 2);

  cache.get_or_build(a, ctx);
  cache.get_or_build(b, ctx);
  cache.get_or_build(a, ctx);  // a is now MRU, b is LRU
  cache.get_or_build(c, ctx);  // evicts b

  const auto mru = cache.keys_mru();
  ASSERT_EQ(mru.size(), 2u);
  EXPECT_EQ(mru[0], c);
  EXPECT_EQ(mru[1], a);
  EXPECT_EQ(cache.stats().evictions, 1u);

  bool built = false;
  cache.get_or_build(b, ctx, &built);  // b was evicted: a rebuild
  EXPECT_TRUE(built);
}

TEST(ServePlanCache, ByteBudgetEvictsButNeverTheNewestEntry) {
  ExecContext ctx(1);
  // Budget of 1 byte: every insertion overflows, so each new entry
  // evicts everything older — but never itself.
  PlanCache cache(8, 1);
  const PlanKey a = key_for({6, 5, 4}, 2);
  const PlanKey b = key_for({7, 5, 4}, 2);
  cache.get_or_build(a, ctx);
  EXPECT_EQ(cache.stats().entries, 1u);
  cache.get_or_build(b, ctx);
  const auto mru = cache.keys_mru();
  ASSERT_EQ(mru.size(), 1u);
  EXPECT_EQ(mru[0], b);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ServePlanCache, DisabledCacheBypasses) {
  ExecContext ctx(1);
  PlanCache cache(0, std::size_t{1} << 30);
  bool built = true;
  EXPECT_EQ(cache.get_or_build(key_for({6, 5, 4}, 2), ctx, &built), nullptr);
  EXPECT_FALSE(built);
  cache.note_bypass();
  const PlanCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.bypass, 2u);  // one from the disabled lookup, one explicit
}

TEST(ServePlanCache, KeyStringIsCanonical) {
  const PlanKey k = key_for({6, 5, 4}, 2);
  EXPECT_EQ(k.to_string(),
            "dims=6x5x4|rank=2|scheme=permode|method=auto|levels=0|prec=f64");
  EXPECT_EQ(key_for({6, 5, 4}, 2, true).to_string(),
            "dims=6x5x4|rank=2|scheme=permode|method=auto|levels=0|prec=f32");
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(ServeJobQueue, RejectsWhenFull) {
  JobQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1, "k"));
  EXPECT_TRUE(q.try_push(2, "k"));
  EXPECT_FALSE(q.try_push(3, "k"));
  const JobQueueStats s = q.stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected_busy, 1u);
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(ServeJobQueue, ExtractMatchingPreservesFifoAmongMatches) {
  JobQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, "a"));
  ASSERT_TRUE(q.try_push(2, "b"));
  ASSERT_TRUE(q.try_push(3, "a"));
  ASSERT_TRUE(q.try_push(4, "a"));

  std::vector<JobQueue<int>::Item> batch;
  EXPECT_EQ(q.extract_matching("a", 2, batch), 2u);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].job, 1);
  EXPECT_EQ(batch[1].job, 3);

  // The non-matching job and the over-max one are still queued, in order.
  auto i1 = q.pop();
  auto i2 = q.pop();
  ASSERT_TRUE(i1 && i2);
  EXPECT_EQ(i1->job, 2);
  EXPECT_EQ(i2->job, 4);
}

TEST(ServeJobQueue, EmptyKeyNeverMatches) {
  JobQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, ""));
  std::vector<JobQueue<int>::Item> batch;
  EXPECT_EQ(q.extract_matching("", 4, batch), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(q.stats().depth, 1u);
}

TEST(ServeJobQueue, StopDrainsThenSignalsExit) {
  JobQueue<int> q(8);
  ASSERT_TRUE(q.try_push(1, ""));
  q.stop();
  EXPECT_FALSE(q.try_push(2, ""));  // stopped reads as busy
  auto drained = q.pop();
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->job, 1);
  EXPECT_FALSE(q.pop().has_value());  // stopped and empty: worker exits
}

TEST(ServeJobQueue, StopWakesBlockedConsumer) {
  JobQueue<int> q(8);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.stop();
  consumer.join();
}

}  // namespace
}  // namespace dmtk::serve
