// The heart of the test suite: every MTTKRP algorithm must agree with the
// element-wise reference on every mode of tensors with 2..6 modes, across
// ranks and thread counts. Additional tests pin the algorithm-selection
// logic, the timing instrumentation, and input validation.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/mttkrp.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

using testing::random_factors;

struct MttkrpCase {
  std::vector<index_t> dims;
  index_t mode;
  index_t rank;
  MttkrpMethod method;
  int threads;

  friend std::ostream& operator<<(std::ostream& os, const MttkrpCase& c) {
    os << "dims=[";
    for (index_t d : c.dims) os << d << ",";
    os << "] mode=" << c.mode << " rank=" << c.rank << " method="
       << to_string(c.method) << " threads=" << c.threads;
    return os;
  }
};

class MttkrpSweep : public ::testing::TestWithParam<MttkrpCase> {};

TEST_P(MttkrpSweep, MatchesReference) {
  const MttkrpCase& p = GetParam();
  Rng rng(static_cast<std::uint64_t>(
      1000 + p.mode * 7 + p.rank * 13 +
      static_cast<std::uint64_t>(p.dims.size()) * 31));
  Tensor X = Tensor::random_uniform(p.dims, rng);
  const std::vector<Matrix> factors = random_factors(p.dims, p.rank, rng);

  Matrix expect = mttkrp(X, factors, p.mode, MttkrpMethod::Reference);
  Matrix got = mttkrp(X, factors, p.mode, p.method, p.threads);
  // Different summation orders: tolerance scales with the contraction size.
  const double tol = 1e-11 * static_cast<double>(X.cosize(p.mode));
  ASSERT_EQ(got.rows(), X.dim(p.mode));
  ASSERT_EQ(got.cols(), p.rank);
  for (index_t j = 0; j < got.cols(); ++j) {
    for (index_t i = 0; i < got.rows(); ++i) {
      const double scale =
          std::max(1.0, std::abs(expect(i, j)));
      ASSERT_NEAR(got(i, j), expect(i, j), tol * scale)
          << "at (" << i << "," << j << ")";
    }
  }
}

std::vector<MttkrpCase> sweep_cases() {
  const std::vector<std::vector<index_t>> shapes = {
      {6, 7},                // 2-way: MTTKRP is a plain matrix product
      {5, 6, 7},             // 3-way cube-ish
      {9, 2, 8},             // small middle mode
      {4, 5, 3, 6},          // 4-way
      {3, 4, 2, 3, 4},       // 5-way
      {2, 3, 2, 2, 3, 2},    // 6-way (the paper's largest N)
      {31, 5, 17},           // one mode crossing BLAS tile edges
  };
  const std::vector<MttkrpMethod> methods = {
      MttkrpMethod::Reorder, MttkrpMethod::OneStepSeq, MttkrpMethod::OneStep,
      MttkrpMethod::TwoStep, MttkrpMethod::Auto};
  std::vector<MttkrpCase> cases;
  for (const auto& dims : shapes) {
    for (index_t mode = 0; mode < static_cast<index_t>(dims.size()); ++mode) {
      for (MttkrpMethod m : methods) {
        cases.push_back({dims, mode, 3, m, 1});
      }
      // Threaded variants of the parallel-relevant methods.
      cases.push_back({dims, mode, 3, MttkrpMethod::OneStep, 4});
      cases.push_back({dims, mode, 3, MttkrpMethod::TwoStep, 4});
    }
  }
  // Rank edge cases.
  for (index_t rank : {index_t{1}, index_t{8}, index_t{25}}) {
    cases.push_back({{5, 6, 7}, 1, rank, MttkrpMethod::OneStep, 2});
    cases.push_back({{5, 6, 7}, 1, rank, MttkrpMethod::TwoStep, 2});
  }
  // More threads than blocks (IRn small) for internal-mode 1-step.
  cases.push_back({{4, 5, 2}, 1, 3, MttkrpMethod::OneStep, 8});
  // More threads than fibers for external-mode 1-step.
  cases.push_back({{4, 2, 2}, 0, 3, MttkrpMethod::OneStep, 16});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllMethodsModesShapes, MttkrpSweep,
                         ::testing::ValuesIn(sweep_cases()));

TEST(Mttkrp, TwoStepSideSelectionHeuristic) {
  // I_Ln > I_Rn must pick the left partial MTTKRP (Alg 4 line 4).
  Tensor skew_left({20, 3, 2});   // mode 1: I_L = 20 > I_R = 2
  Tensor skew_right({2, 3, 20});  // mode 1: I_L = 2 < I_R = 20
  EXPECT_TRUE(twostep_uses_left(skew_left, 1));
  EXPECT_FALSE(twostep_uses_left(skew_right, 1));
}

TEST(Mttkrp, TwoStepDefinedOnlyForInternalModes) {
  EXPECT_FALSE(twostep_is_defined(3, 0));
  EXPECT_TRUE(twostep_is_defined(3, 1));
  EXPECT_FALSE(twostep_is_defined(3, 2));
  EXPECT_FALSE(twostep_is_defined(2, 0));
  EXPECT_TRUE(twostep_is_defined(6, 4));
}

TEST(Mttkrp, BothTwoStepSidesAgree) {
  // Force both orderings via shapes skewed each way; both must match the
  // reference (covered by the sweep) AND each other on a balanced shape
  // where the heuristic could tip either way.
  Rng rng(55);
  Tensor Xl = Tensor::random_uniform({8, 5, 3}, rng);  // left-first shape
  Tensor Xr = Tensor::random_uniform({3, 5, 8}, rng);  // right-first shape
  for (const Tensor* X : {&Xl, &Xr}) {
    const std::vector<Matrix> fs = random_factors(X->dims(), 4, rng);
    Matrix ref = mttkrp(*X, fs, 1, MttkrpMethod::Reference);
    Matrix two = mttkrp(*X, fs, 1, MttkrpMethod::TwoStep, 2);
    testing::expect_matrix_near(ref, two, 1e-10);
  }
}

TEST(Mttkrp, AutoPolicyMatchesPaper) {
  // Auto = 1-step on external modes, 2-step internally. Verify via the
  // timing categories each method populates: 2-step fills gemv, external
  // 1-step fills krp + reduce.
  Rng rng(56);
  Tensor X = Tensor::random_uniform({6, 7, 8}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 3, rng);

  MttkrpTimings t0;
  (void)mttkrp(X, fs, 0, MttkrpMethod::Auto, 2, &t0);
  EXPECT_GT(t0.reduce, 0.0);  // external -> 1-step's reduction ran
  EXPECT_EQ(t0.gemv, 0.0);

  MttkrpTimings t1;
  (void)mttkrp(X, fs, 1, MttkrpMethod::Auto, 2, &t1);
  EXPECT_GT(t1.gemv, 0.0);  // internal -> 2-step's multi-TTV ran
  EXPECT_EQ(t1.reduce, 0.0);
}

TEST(Mttkrp, TimingsSumApproximatelyToTotal) {
  Rng rng(57);
  Tensor X = Tensor::random_uniform({20, 21, 22}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 10, rng);
  MttkrpTimings t;
  (void)mttkrp(X, fs, 1, MttkrpMethod::TwoStep, 1, &t);
  EXPECT_GT(t.total, 0.0);
  const double parts = t.krp + t.krp_lr + t.gemm + t.gemv + t.reduce +
                       t.reorder;
  EXPECT_LE(parts, t.total * 1.5 + 1e-3);
  EXPECT_GT(parts, 0.0);
}

TEST(Mttkrp, TimingsAccumulateAcrossCalls) {
  Rng rng(58);
  Tensor X = Tensor::random_uniform({6, 6, 6}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 2, rng);
  MttkrpTimings t;
  (void)mttkrp(X, fs, 0, MttkrpMethod::OneStep, 1, &t);
  const double total1 = t.total;
  (void)mttkrp(X, fs, 0, MttkrpMethod::OneStep, 1, &t);
  EXPECT_GT(t.total, total1);
}

TEST(Mttkrp, TimingsPlusEquals) {
  MttkrpTimings a, b;
  a.krp = 1;
  a.total = 2;
  b.krp = 3;
  b.gemv = 4;
  b.total = 5;
  a += b;
  EXPECT_DOUBLE_EQ(a.krp, 4);
  EXPECT_DOUBLE_EQ(a.gemv, 4);
  EXPECT_DOUBLE_EQ(a.total, 7);
}

TEST(Mttkrp, OutputResizedAutomatically) {
  Rng rng(59);
  Tensor X = Tensor::random_uniform({4, 5, 6}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 3, rng);
  Matrix M(2, 2);  // wrong shape on purpose
  mttkrp(X, fs, 1, M, MttkrpMethod::OneStep);
  EXPECT_EQ(M.rows(), 5);
  EXPECT_EQ(M.cols(), 3);
}

TEST(Mttkrp, ValidationErrors) {
  Rng rng(60);
  Tensor X = Tensor::random_uniform({4, 5, 6}, rng);
  std::vector<Matrix> fs = random_factors(X.dims(), 3, rng);

  EXPECT_THROW((void)mttkrp(X, fs, -1), DimensionError);
  EXPECT_THROW((void)mttkrp(X, fs, 3), DimensionError);

  std::vector<Matrix> too_few(fs.begin(), fs.begin() + 2);
  EXPECT_THROW((void)mttkrp(X, too_few, 0), DimensionError);

  std::vector<Matrix> bad_rank = fs;
  bad_rank[1] = Matrix(5, 4);  // rank 4 vs 3
  EXPECT_THROW((void)mttkrp(X, bad_rank, 0), DimensionError);

  std::vector<Matrix> bad_rows = fs;
  bad_rows[2] = Matrix(7, 3);  // 7 != dim 6
  EXPECT_THROW((void)mttkrp(X, bad_rows, 0), DimensionError);
}

TEST(Mttkrp, MethodNames) {
  EXPECT_EQ(to_string(MttkrpMethod::OneStep), "1-step");
  EXPECT_EQ(to_string(MttkrpMethod::TwoStep), "2-step");
  EXPECT_EQ(to_string(MttkrpMethod::Reorder), "reorder");
  EXPECT_EQ(to_string(MttkrpMethod::Auto), "auto");
}

TEST(Mttkrp, TwoWayModeZeroIsPlainGemm) {
  // For N=2, the mode-0 MTTKRP is X * U1 — an ordinary matrix product.
  Rng rng(61);
  Tensor X = Tensor::random_uniform({5, 7}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 3, rng);
  Matrix M = mttkrp(X, fs, 0, MttkrpMethod::OneStep, 2);
  for (index_t c = 0; c < 3; ++c) {
    for (index_t i = 0; i < 5; ++i) {
      double expect = 0.0;
      for (index_t j = 0; j < 7; ++j) {
        const std::array<index_t, 2> idx{i, j};
        expect += X(idx) * fs[1](j, c);
      }
      ASSERT_NEAR(M(i, c), expect, 1e-12);
    }
  }
}

TEST(Mttkrp, DeterministicAcrossRuns) {
  // Thread-private accumulation + ordered reduction must give bitwise
  // reproducible results run-to-run with the same thread count.
  Rng rng(62);
  Tensor X = Tensor::random_uniform({8, 9, 10}, rng);
  const std::vector<Matrix> fs = random_factors(X.dims(), 5, rng);
  Matrix a = mttkrp(X, fs, 1, MttkrpMethod::OneStep, 4);
  Matrix b = mttkrp(X, fs, 1, MttkrpMethod::OneStep, 4);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
}

}  // namespace
}  // namespace dmtk
