/// \file test_fault.cpp
/// \brief The deterministic fault-injection registry: arming, trigger
/// budgets, reproducible draw sequences, spec parsing, and the counters
/// the server's health response embeds.

#include <gtest/gtest.h>

#include <vector>

#include "util/fault.hpp"

namespace dmtk::fault {
namespace {

/// Every test leaves the registry clean — fault state is process-global
/// and other suites assume nothing is armed.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultTest, UnarmedSitesNeverFail) {
  EXPECT_FALSE(any_armed());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(should_fail("io.write"));
  EXPECT_NO_THROW(fail_point("io.write"));
  EXPECT_EQ(trigger_count("io.write"), 0u);
}

TEST_F(FaultTest, RateOneFailsEveryCall) {
  arm("t.always", 1.0, 123);
  EXPECT_TRUE(any_armed());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(should_fail("t.always"));
  EXPECT_EQ(trigger_count("t.always"), 10u);
}

TEST_F(FaultTest, RateZeroNeverFails) {
  arm("t.never", 0.0, 123);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(should_fail("t.never"));
  EXPECT_EQ(trigger_count("t.never"), 0u);
}

TEST_F(FaultTest, DrawSequenceIsSeedDeterministic) {
  arm("t.seq", 0.5, 42);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(should_fail("t.seq"));
  // Re-arming with the same (rate, seed) resets the PRNG: identical run.
  arm("t.seq", 0.5, 42);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(should_fail("t.seq"), first[i]);
  // A different seed gives a different sequence (with 2^-64 flakiness).
  arm("t.seq", 0.5, 43);
  std::vector<bool> other;
  for (int i = 0; i < 64; ++i) other.push_back(should_fail("t.seq"));
  EXPECT_NE(first, other);
}

TEST_F(FaultTest, TriggerBudgetHealsTheSite) {
  arm("t.budget", 1.0, 7, /*max_triggers=*/3);
  EXPECT_TRUE(should_fail("t.budget"));
  EXPECT_TRUE(should_fail("t.budget"));
  EXPECT_TRUE(should_fail("t.budget"));
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(should_fail("t.budget"));
  EXPECT_EQ(trigger_count("t.budget"), 3u);
}

TEST_F(FaultTest, FailPointThrowsInjectedFaultNamingTheSite) {
  arm("t.throw", 1.0, 1);
  try {
    fail_point("t.throw");
    FAIL() << "fail_point did not throw";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), "t.throw");
    EXPECT_NE(std::string(e.what()).find("t.throw"), std::string::npos);
  }
}

TEST_F(FaultTest, FaultPointMacroIsNoopWhenUnarmed) {
  EXPECT_NO_THROW(DMTK_FAULT_POINT("t.macro"));
  arm("t.macro", 1.0, 1);
  EXPECT_THROW(DMTK_FAULT_POINT("t.macro"), InjectedFault);
}

TEST_F(FaultTest, DisarmDropsTheSite) {
  arm("t.gone", 1.0, 1);
  disarm("t.gone");
  EXPECT_FALSE(should_fail("t.gone"));
  EXPECT_EQ(trigger_count("t.gone"), 0u);
}

TEST_F(FaultTest, CountersAreNameSortedPairs) {
  arm("t.b", 1.0, 1);
  arm("t.a", 1.0, 1);
  (void)should_fail("t.b");
  (void)should_fail("t.b");
  (void)should_fail("t.a");
  const auto c = counters();
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].first, "t.a");
  EXPECT_EQ(c[0].second, 1u);
  EXPECT_EQ(c[1].first, "t.b");
  EXPECT_EQ(c[1].second, 2u);
}

TEST_F(FaultTest, SpecParsingArmsEverySite) {
  arm_from_spec("t.x:1.0:5,t.y:0.0,t.z:1:9:2");
  EXPECT_TRUE(should_fail("t.x"));
  EXPECT_FALSE(should_fail("t.y"));
  EXPECT_TRUE(should_fail("t.z"));
  EXPECT_TRUE(should_fail("t.z"));
  EXPECT_FALSE(should_fail("t.z"));  // count bound: 2
}

TEST_F(FaultTest, MalformedSpecsAreRejected) {
  EXPECT_THROW(arm_from_spec("noname"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("site:notarate"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec("site:1.0:badseed"), std::invalid_argument);
  EXPECT_THROW(arm_from_spec(":1.0"), std::invalid_argument);
}

}  // namespace
}  // namespace dmtk::fault
