#pragma once
/// Shared helpers for the dmtk test suite.

#include <gtest/gtest.h>

#include <vector>

#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace dmtk::testing {

/// Naive triple-loop GEMM oracle: C = alpha*op(A)*op(B) + beta*C, all
/// column-major buffers with the given leading dimensions.
inline void naive_gemm(bool ta, bool tb, index_t m, index_t n, index_t k,
                       double alpha, const double* A, index_t lda,
                       const double* B, index_t ldb, double beta, double* C,
                       index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double a = ta ? A[p + i * lda] : A[i + p * lda];
        const double b = tb ? B[j + p * ldb] : B[p + j * ldb];
        s += a * b;
      }
      C[i + j * ldc] = alpha * s + beta * C[i + j * ldc];
    }
  }
}

/// Expect matrices equal within an absolute-plus-relative tolerance.
inline void expect_matrix_near(const Matrix& a, const Matrix& b,
                               double tol = 1e-10) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double scale = std::max({1.0, std::abs(a(i, j)),
                                     std::abs(b(i, j))});
      ASSERT_NEAR(a(i, j), b(i, j), tol * scale)
          << "at (" << i << ", " << j << ")";
    }
  }
}

/// Expect tensors equal within a tolerance.
inline void expect_tensor_near(const Tensor& a, const Tensor& b,
                               double tol = 1e-10) {
  ASSERT_EQ(a.order(), b.order());
  for (index_t n = 0; n < a.order(); ++n) ASSERT_EQ(a.dim(n), b.dim(n));
  for (index_t l = 0; l < a.numel(); ++l) {
    const double scale = std::max({1.0, std::abs(a[l]), std::abs(b[l])});
    ASSERT_NEAR(a[l], b[l], tol * scale) << "at linear index " << l;
  }
}

/// Random factor matrices for a tensor shape.
inline std::vector<Matrix> random_factors(std::span<const index_t> dims,
                                          index_t rank, Rng& rng) {
  std::vector<Matrix> fs;
  fs.reserve(dims.size());
  for (index_t d : dims) fs.push_back(Matrix::random_uniform(d, rank, rng));
  return fs;
}

}  // namespace dmtk::testing
