#pragma once
/// Shared helpers for the dmtk test suite.

#include <gtest/gtest.h>

#include <limits>
#include <type_traits>
#include <vector>

#include "core/matrix.hpp"
#include "core/tensor.hpp"
#include "util/rng.hpp"

namespace dmtk::testing {

/// Default comparison tolerance for a scalar type: a small multiple of its
/// machine epsilon (the scaling the typed float/double tests share, so one
/// test body serves both precisions).
template <typename T>
constexpr double eps_tol(double mult = 100.0) {
  return mult * static_cast<double>(std::numeric_limits<T>::epsilon());
}

/// Expect |a - b| <= tol * max(1, |a|, |b|) — the absolute-plus-relative
/// rule of expect_matrix_near, for scalars of any precision.
template <typename T>
void expect_near_eps(T a, T b, double tol_mult = 100.0) {
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  const double scale = std::max({1.0, std::abs(da), std::abs(db)});
  ASSERT_NEAR(da, db, eps_tol<T>(tol_mult) * scale);
}

/// Naive triple-loop GEMM oracle: C = alpha*op(A)*op(B) + beta*C, all
/// column-major buffers with the given leading dimensions.
inline void naive_gemm(bool ta, bool tb, index_t m, index_t n, index_t k,
                       double alpha, const double* A, index_t lda,
                       const double* B, index_t ldb, double beta, double* C,
                       index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const double a = ta ? A[p + i * lda] : A[i + p * lda];
        const double b = tb ? B[j + p * ldb] : B[p + j * ldb];
        s += a * b;
      }
      C[i + j * ldc] = alpha * s + beta * C[i + j * ldc];
    }
  }
}

/// Expect matrices equal within an absolute-plus-relative tolerance
/// (defaulting to an eps-scaled one for the matrices' scalar type).
template <typename T>
void expect_matrix_near(const MatrixT<T>& a, const MatrixT<T>& b,
                        double tol = -1.0) {
  if (tol < 0.0) {
    tol = std::is_same_v<T, double> ? 1e-10 : eps_tol<T>(100.0);
  }
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (index_t j = 0; j < a.cols(); ++j) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const double av = static_cast<double>(a(i, j));
      const double bv = static_cast<double>(b(i, j));
      const double scale = std::max({1.0, std::abs(av), std::abs(bv)});
      ASSERT_NEAR(av, bv, tol * scale) << "at (" << i << ", " << j << ")";
    }
  }
}

/// Expect tensors equal within a tolerance (eps-scaled default as above).
template <typename T>
void expect_tensor_near(const TensorT<T>& a, const TensorT<T>& b,
                        double tol = -1.0) {
  if (tol < 0.0) {
    tol = std::is_same_v<T, double> ? 1e-10 : eps_tol<T>(100.0);
  }
  ASSERT_EQ(a.order(), b.order());
  for (index_t n = 0; n < a.order(); ++n) ASSERT_EQ(a.dim(n), b.dim(n));
  for (index_t l = 0; l < a.numel(); ++l) {
    const double av = static_cast<double>(a[l]);
    const double bv = static_cast<double>(b[l]);
    const double scale = std::max({1.0, std::abs(av), std::abs(bv)});
    ASSERT_NEAR(av, bv, tol * scale) << "at linear index " << l;
  }
}

/// Random factor matrices for a tensor shape.
template <typename T = double>
std::vector<MatrixT<T>> random_factors(std::span<const index_t> dims,
                                       index_t rank, Rng& rng) {
  std::vector<MatrixT<T>> fs;
  fs.reserve(dims.size());
  for (index_t d : dims) {
    fs.push_back(MatrixT<T>::random_uniform(d, rank, rng));
  }
  return fs;
}

}  // namespace dmtk::testing
