/// Socket-level tests for the decomposition server: an in-process Server
/// on a temp-dir Unix socket, driven through serve::Client. Covers the
/// golden-output contract (a served decompose returns byte-identical
/// model payloads to the direct cp_als call), plan-cache warm-up, the
/// malformed-request table (strict validation, connection stays usable),
/// a multi-client mixed-shape stress run, and admission control.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cp_als.hpp"
#include "core/tensor.hpp"
#include "io/tensor_io.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sparse/sparse_tensor.hpp"
#include "util/rng.hpp"

namespace dmtk::serve {
namespace {

namespace fs = std::filesystem;

/// Temp dir + running server, torn down per test. Unix socket paths are
/// length-limited (~108 bytes), so the fixture anchors under /tmp.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/dmtk_serve_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void start(ServeOptions opts) {
    opts.socket = (fs::path(dir_) / "dmtk.sock").string();
    socket_ = opts.socket;
    server_ = std::make_unique<Server>(opts);
    server_->start();
  }

  /// Write a random dense tensor and return its path.
  std::string make_dense(const std::string& name, std::vector<index_t> dims,
                         std::uint64_t seed = 11) {
    Rng rng(seed);
    const Tensor X = Tensor::random_uniform(std::move(dims), rng);
    const std::string path = (fs::path(dir_) / name).string();
    io::write_tensor(path, X);
    return path;
  }

  std::string make_sparse(const std::string& name, std::vector<index_t> dims,
                          index_t nnz, std::uint64_t seed = 13) {
    Rng rng(seed);
    const auto S = sparse::SparseTensor::random(std::move(dims), nnz, rng);
    const std::string path = (fs::path(dir_) / name).string();
    io::write_tns(path, S);
    return path;
  }

  Json roundtrip(const Json& req) {
    Client c;
    c.connect(socket_);
    return c.roundtrip(req);
  }

  std::string dir_;
  std::string socket_;
  std::unique_ptr<Server> server_;
};

Json decompose_req(const std::string& tensor, index_t rank, int iters,
                   std::uint64_t seed) {
  Json r;
  r.set("type", Json("decompose"));
  r.set("tensor", Json(tensor));
  r.set("rank", Json(rank));
  r.set("iters", Json(iters));
  r.set("tol", Json(0.0));  // fixed sweep count: golden runs must agree
  r.set("seed", Json(seed));
  return r;
}

// ---------------------------------------------------------------------------
// Golden output: served decompose == direct cp_als, byte for byte
// ---------------------------------------------------------------------------

TEST_F(ServeTest, DecomposeMatchesDirectCpAlsExactly) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("cube.dten", {12, 10, 8});

  const Json resp = roundtrip(decompose_req(tensor, 3, 4, 99));
  ASSERT_NE(resp.find("ok"), nullptr) << resp.dump();
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  ASSERT_NE(resp.find("model"), nullptr);

  CpAlsOptions o;
  o.rank = 3;
  o.max_iters = 4;
  o.tol = 0.0;
  o.seed = 99;
  o.threads = 1;
  const CpAlsResult direct = cp_als(io::read_tensor(tensor), o);

  EXPECT_EQ(resp.find("model")->dump(),
            ktensor_to_json(direct.model).dump());
  EXPECT_EQ(resp.find("iterations")->as_number(), direct.iterations);
  EXPECT_EQ(resp.find("final_fit")->as_number(), direct.final_fit);

  // And the repeat — now through the cached plan — is byte-identical too.
  const Json again = roundtrip(decompose_req(tensor, 3, 4, 99));
  EXPECT_EQ(again.find("model")->dump(), resp.find("model")->dump());
}

TEST_F(ServeTest, ModelFileMatchesTheBatchCli) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("cube.dten", {12, 10, 8});
  const std::string served_out = (fs::path(dir_) / "served.dktn").string();

  Json req = decompose_req(tensor, 3, 4, 99);
  req.set("out", Json(served_out));
  req.set("inline_model", Json(false));
  const Json resp = roundtrip(req);
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("model"), nullptr);  // inline_model false

  CpAlsOptions o;
  o.rank = 3;
  o.max_iters = 4;
  o.tol = 0.0;
  o.seed = 99;
  o.threads = 1;
  const CpAlsResult direct = cp_als(io::read_tensor(tensor), o);
  const std::string direct_out = (fs::path(dir_) / "direct.dktn").string();
  io::write_ktensor(direct_out, direct.model);

  std::ifstream a(served_out, std::ios::binary);
  std::ifstream b(direct_out, std::ios::binary);
  const std::string ab((std::istreambuf_iterator<char>(a)),
                       std::istreambuf_iterator<char>());
  const std::string bb((std::istreambuf_iterator<char>(b)),
                       std::istreambuf_iterator<char>());
  ASSERT_FALSE(ab.empty());
  EXPECT_EQ(ab, bb);
}

TEST_F(ServeTest, FloatDecomposeMatchesDirectFloatCpAls) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("cube.dten", {12, 10, 8});

  Json req = decompose_req(tensor, 3, 4, 99);
  req.set("precision", Json("float"));
  const Json resp = roundtrip(req);
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("precision")->as_string(), "float");

  CpAlsOptionsF o;
  o.rank = 3;
  o.max_iters = 4;
  o.tol = 0.0;
  o.seed = 99;
  o.threads = 1;
  const CpAlsResultF direct = cp_als(io::read_tensor_as<float>(tensor), o);
  EXPECT_EQ(resp.find("model")->dump(),
            ktensor_to_json(direct.model).dump());
}

// ---------------------------------------------------------------------------
// Plan cache behavior through the wire
// ---------------------------------------------------------------------------

TEST_F(ServeTest, RepeatRequestsHitThePlanCache) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("cube.dten", {12, 10, 8});

  const Json first = roundtrip(decompose_req(tensor, 3, 2, 1));
  ASSERT_TRUE(first.find("ok")->as_bool()) << first.dump();
  EXPECT_EQ(first.find("plan")->as_string(), "miss");

  const Json second = roundtrip(decompose_req(tensor, 3, 2, 2));
  EXPECT_EQ(second.find("plan")->as_string(), "hit");

  Json stats_req;
  stats_req.set("type", Json("stats"));
  const Json stats = roundtrip(stats_req);
  const Json* cache = stats.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("misses")->as_number(), 1.0);
  EXPECT_GE(cache->find("hits")->as_number(), 1.0);
  EXPECT_GT(cache->find("hit_rate")->as_number(), 0.0);
}

TEST_F(ServeTest, ColdRequestsBypassTheCache) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  start(so);
  const std::string tensor = make_dense("cube.dten", {12, 10, 8});

  Json warm = decompose_req(tensor, 3, 2, 1);
  roundtrip(warm);

  Json cold = decompose_req(tensor, 3, 2, 1);
  cold.set("cold", Json(true));
  const Json resp = roundtrip(cold);
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("plan")->as_string(), "bypass");

  Json stats_req;
  stats_req.set("type", Json("stats"));
  const Json stats = roundtrip(stats_req);
  EXPECT_GE(stats.find("cache")->find("bypass")->as_number(), 1.0);
}

// ---------------------------------------------------------------------------
// Malformed requests: strict validation, connection survives
// ---------------------------------------------------------------------------

TEST_F(ServeTest, MalformedRequestTable) {
  ServeOptions so;
  so.workers = 1;
  start(so);
  const std::string tensor = make_dense("cube.dten", {6, 5, 4});

  struct Case {
    const char* line;
    const char* code;
  };
  const Case cases[] = {
      {"this is not json", "invalid_request"},
      {"[1,2,3]", "invalid_request"},  // not an object
      {R"({"id":1})", "invalid_request"},  // no type
      {R"({"type":"frobnicate"})", "invalid_request"},
      {R"({"type":"decompose"})", "invalid_request"},  // no tensor
      {R"({"type":"decompose","tensor":7})", "invalid_request"},
      {R"({"type":"decompose","tensor":"x.dten","rank":0})",
       "invalid_request"},
      {R"({"type":"decompose","tensor":"x.dten","rank":2.5})",
       "invalid_request"},
      {R"({"type":"decompose","tensor":"x.dten","itters":5})",
       "invalid_request"},  // unknown field (typo) is an error, not a default
      {R"({"type":"decompose","tensor":"x.dten","precision":"f16"})",
       "invalid_request"},
      {R"({"type":"decompose","tensor":"x.dten","sweep":"bogus"})",
       "invalid_request"},
      {R"({"type":"decompose","tensor":"/nonexistent/x.dten"})", "io_error"},
      {R"({"type":"mttkrp","tensor":"x.dten"})",
       "invalid_request"},  // mode required
      {R"({"type":"stats","tensor":"x.dten"})",
       "invalid_request"},  // stats takes no tensor
  };

  // One connection for the whole table: a rejected request must leave the
  // stream usable for the next one.
  Client c;
  c.connect(socket_);
  int i = 0;
  for (const Case& tc : cases) {
    Json req;
    try {
      req = Json::parse(tc.line);
    } catch (const JsonError&) {
      // Raw malformed line: send as-is.
      c.send_line(tc.line);
      const auto resp = c.recv_line();
      ASSERT_TRUE(resp.has_value()) << "case " << i;
      const Json r = Json::parse(*resp);
      EXPECT_FALSE(r.find("ok")->as_bool()) << *resp;
      EXPECT_EQ(r.find("error")->find("code")->as_string(), tc.code)
          << "case " << i << ": " << *resp;
      ++i;
      continue;
    }
    const Json r = c.roundtrip(req);
    EXPECT_FALSE(r.find("ok")->as_bool()) << r.dump();
    EXPECT_EQ(r.find("error")->find("code")->as_string(), tc.code)
        << "case " << i << ": " << r.dump();
    ++i;
  }

  // The connection still serves a good request afterwards.
  const Json ok = c.roundtrip(decompose_req(tensor, 2, 1, 5));
  EXPECT_TRUE(ok.find("ok")->as_bool()) << ok.dump();
}

TEST_F(ServeTest, SparseFloatDecomposeRunsThroughTheBypassPath) {
  ServeOptions so;
  start(so);
  const std::string tns = make_sparse("s.tns", {8, 7, 6}, 30);
  Json req = decompose_req(tns, 2, 2, 1);
  req.set("precision", Json("float"));
  const Json resp = roundtrip(req);
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("precision")->as_string(), "float");
  EXPECT_EQ(resp.find("plan")->as_string(), "bypass");
  EXPECT_EQ(resp.find("scheme")->as_string(), "csf");
  EXPECT_TRUE(std::isfinite(resp.find("final_fit")->as_number()))
      << resp.dump();
}

TEST_F(ServeTest, IdIsEchoedVerbatim) {
  ServeOptions so;
  start(so);
  Json req;
  req.set("type", Json("stats"));
  Json id;
  id.set("client", Json("t7"));
  id.set("n", Json(3));
  req.set("id", id);
  const Json resp = roundtrip(req);
  ASSERT_NE(resp.find("id"), nullptr);
  EXPECT_EQ(*resp.find("id"), id);
}

// ---------------------------------------------------------------------------
// Info + sparse decompose through the wire
// ---------------------------------------------------------------------------

TEST_F(ServeTest, InfoReportsDenseAndSparse) {
  ServeOptions so;
  start(so);
  const std::string dense = make_dense("cube.dten", {6, 5, 4});
  const std::string tns = make_sparse("s.tns", {8, 7, 6}, 30);

  Json dreq;
  dreq.set("type", Json("info"));
  dreq.set("tensor", Json(dense));
  const Json dresp = roundtrip(dreq);
  ASSERT_TRUE(dresp.find("ok")->as_bool()) << dresp.dump();
  EXPECT_EQ(dresp.find("kind")->as_string(), "dense");
  EXPECT_EQ(dresp.find("numel")->as_number(), 120.0);

  Json sreq;
  sreq.set("type", Json("info"));
  sreq.set("tensor", Json(tns));
  const Json sresp = roundtrip(sreq);
  ASSERT_TRUE(sresp.find("ok")->as_bool()) << sresp.dump();
  EXPECT_EQ(sresp.find("kind")->as_string(), "sparse");
  EXPECT_EQ(sresp.find("nnz")->as_number(), 30.0);
}

TEST_F(ServeTest, SparseDecomposeRunsAndBypassesTheCache) {
  ServeOptions so;
  so.workers = 1;
  start(so);
  const std::string tns = make_sparse("s.tns", {8, 7, 6}, 40);
  const Json resp = roundtrip(decompose_req(tns, 2, 3, 1));
  ASSERT_TRUE(resp.find("ok")->as_bool()) << resp.dump();
  EXPECT_EQ(resp.find("plan")->as_string(), "bypass");
  EXPECT_EQ(resp.find("scheme")->as_string(), "csf");
}

// ---------------------------------------------------------------------------
// Concurrency: mixed-shape stress, admission control
// ---------------------------------------------------------------------------

TEST_F(ServeTest, EightClientStressMixedShapes) {
  ServeOptions so;
  so.workers = 2;
  so.threads = 1;
  so.queue_depth = 256;
  start(so);

  const std::vector<std::string> tensors = {
      make_dense("a.dten", {12, 10, 8}, 1),
      make_dense("b.dten", {9, 9, 9}, 2),
      make_sparse("c.tns", {10, 9, 8}, 50, 3),
  };

  constexpr int kClients = 8;
  constexpr int kRequestsEach = 6;
  std::atomic<int> ok_count{0};
  std::atomic<int> busy_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      Client c;
      c.connect(socket_);
      for (int r = 0; r < kRequestsEach; ++r) {
        const std::string& tensor = tensors[(t + r) % tensors.size()];
        const Json resp = c.roundtrip(decompose_req(tensor, 2, 2, 17));
        const Json* ok = resp.find("ok");
        ASSERT_NE(ok, nullptr);
        if (ok->as_bool()) {
          ok_count.fetch_add(1);
        } else {
          // The only acceptable failure under load is admission control.
          EXPECT_EQ(resp.find("error")->find("code")->as_string(), "busy")
              << resp.dump();
          busy_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  EXPECT_EQ(ok_count.load() + busy_count.load(), kClients * kRequestsEach);
  EXPECT_GT(ok_count.load(), 0);

  // Repeated shapes across 48 requests on 2 workers must warm the caches.
  Json stats_req;
  stats_req.set("type", Json("stats"));
  const Json stats = roundtrip(stats_req);
  EXPECT_GT(stats.find("cache")->find("hits")->as_number(), 0.0)
      << stats.dump();
  EXPECT_GT(stats.find("cache")->find("hit_rate")->as_number(), 0.0);
}

TEST_F(ServeTest, FullQueueRejectsAsBusy) {
  ServeOptions so;
  so.workers = 1;
  so.threads = 1;
  so.queue_depth = 1;
  // A batching window long enough to hold the worker while we overfill
  // the one-slot queue deterministically.
  so.batch_window_ms = 300;
  start(so);
  const std::string tensor = make_dense("cube.dten", {12, 10, 8});

  Client c;
  c.connect(socket_);
  // First request occupies the worker (sleeping in its batch window);
  // second sits in the queue; third must be rejected.
  c.send_line(decompose_req(tensor, 2, 1, 1).dump());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  c.send_line(decompose_req(tensor, 2, 1, 2).dump());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  c.send_line(decompose_req(tensor, 2, 1, 3).dump());

  int ok = 0;
  int busy = 0;
  for (int i = 0; i < 3; ++i) {
    const auto line = c.recv_line();
    ASSERT_TRUE(line.has_value());
    const Json r = Json::parse(*line);
    if (r.find("ok")->as_bool()) {
      ++ok;
    } else {
      EXPECT_EQ(r.find("error")->find("code")->as_string(), "busy") << *line;
      ++busy;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(busy, 1);
}

TEST_F(ServeTest, ShutdownRequestStopsTheServer) {
  ServeOptions so;
  start(so);
  Json req;
  req.set("type", Json("shutdown"));
  const Json resp = roundtrip(req);
  EXPECT_TRUE(resp.find("ok")->as_bool());
  server_->wait();  // returns promptly because the request stopped it
  server_->stop();
  EXPECT_FALSE(fs::exists(socket_));  // socket file cleaned up
}

}  // namespace
}  // namespace dmtk::serve
