// Coverage for the CP-ALS sweep planner (exec/sweep_plan.hpp): DimTree
// leaf MTTKRPs vs the Reference oracle across orders 3-6 and degenerate
// shapes, DimTree-vs-PerMode driver iterate equivalence, tree-depth
// ablation agreement, plan reuse across factorizations, the in-order sweep
// protocol, and the zero-allocation contract (arena instrumentation +
// blas::gemm_internal_allocs) over full dimension-tree sweeps.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blas/gemm_workspace.hpp"
#include "core/cp_als.hpp"
#include "core/cp_als_dt.hpp"
#include "core/cp_nn.hpp"
#include "core/mttkrp.hpp"
#include "exec/exec_context.hpp"
#include "exec/sweep_plan.hpp"
#include "test_helpers.hpp"

namespace dmtk {
namespace {

using testing::expect_matrix_near;
using testing::random_factors;

/// One sweep with FIXED factors: every DimTree leaf must then equal the
/// plain mode-n MTTKRP (the tree is an algebraic rearrangement).
void expect_leaves_match_reference(const std::vector<index_t>& dims,
                                   index_t rank, int threads, int levels,
                                   SweepScheme scheme = SweepScheme::DimTree) {
  Rng rng(100 + static_cast<std::uint64_t>(dims.size()) +
          static_cast<std::uint64_t>(rank));
  Tensor X = Tensor::random_uniform(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, rank, rng);
  ExecContext ctx(threads);
  CpAlsSweepPlan plan(ctx, X.dims(), rank, scheme, MttkrpMethod::Auto,
                      levels);
  plan.begin_sweep(X);
  Matrix M;
  for (index_t n = 0; n < X.order(); ++n) {
    plan.mode_mttkrp(n, X, fs, M);
    const Matrix ref = mttkrp(X, fs, n, MttkrpMethod::Reference);
    SCOPED_TRACE("scheme=" + std::string(to_string(plan.scheme())) +
                 " levels=" + std::to_string(levels) + " mode=" +
                 std::to_string(n) + " threads=" + std::to_string(threads));
    expect_matrix_near(M, ref, 1e-9);
  }
}

TEST(SweepPlanDimTree, LeavesMatchReferenceAcrossOrders) {
  const std::vector<std::vector<index_t>> shapes = {
      {5, 4},                 // 2-way: both root children are leaves
      {5, 4, 6},              // 3-way
      {3, 4, 2, 5},           // 4-way
      {3, 2, 4, 2, 3},        // 5-way
      {2, 3, 2, 2, 3, 2},     // 6-way: multi-level tree
  };
  for (const auto& dims : shapes) {
    for (int threads : {1, 3}) {
      expect_leaves_match_reference(dims, 3, threads, /*levels=*/0);
    }
  }
}

TEST(SweepPlanDimTree, DegenerateShapes) {
  // A mode of extent 1 (leading, internal, trailing), rank 1, and rank
  // larger than every extent.
  expect_leaves_match_reference({1, 4, 3}, 3, 2, 0);
  expect_leaves_match_reference({4, 1, 3, 2}, 2, 2, 0);
  expect_leaves_match_reference({3, 4, 1}, 2, 1, 0);
  expect_leaves_match_reference({3, 2, 4}, 1, 2, 0);
  expect_leaves_match_reference({3, 2, 4, 2}, 7, 3, 0);
  expect_leaves_match_reference({2, 1, 2, 1, 3}, 4, 2, 0);
}

TEST(SweepPlanDimTree, TreeDepthAblationAgrees) {
  // 1-level (the old two-group scheme), capped, and full trees all
  // produce the same leaves.
  for (int levels : {1, 2, 0}) {
    expect_leaves_match_reference({3, 4, 2, 5}, 4, 2, levels);
    expect_leaves_match_reference({2, 3, 2, 2, 3, 2}, 3, 3, levels);
  }
}

TEST(SweepPlanDimTree, PerModeSchemeThroughSameInterface) {
  expect_leaves_match_reference({5, 4, 6}, 3, 2, 0, SweepScheme::PerMode);
  expect_leaves_match_reference({3, 4, 2, 5}, 4, 1, 0, SweepScheme::PerMode);
}

TEST(SweepPlanDimTree, PlanReuseAcrossFactorizations) {
  // One plan, several sweeps with fresh factor values — the ALS pattern
  // across two factorizations of the same shape.
  const std::vector<index_t> dims{4, 3, 5, 2};
  Rng rng(77);
  Tensor X = Tensor::random_uniform(dims, rng);
  ExecContext ctx(2);
  CpAlsSweepPlan plan(ctx, X.dims(), 3, SweepScheme::DimTree);
  Matrix M;
  for (int round = 0; round < 3; ++round) {
    const std::vector<Matrix> fs = random_factors(dims, 3, rng);
    plan.begin_sweep(X);
    for (index_t n = 0; n < X.order(); ++n) {
      plan.mode_mttkrp(n, X, fs, M);
      expect_matrix_near(M, mttkrp(X, fs, n, MttkrpMethod::Reference), 1e-9);
    }
  }
  EXPECT_EQ(ctx.arena().in_use(), 0u);
}

TEST(SweepPlanDimTree, LevelsMetadata) {
  ExecContext ctx(1);
  const std::vector<index_t> dims{2, 3, 2, 2, 3, 2};
  CpAlsSweepPlan full(ctx, dims, 2, SweepScheme::DimTree);
  CpAlsSweepPlan one(ctx, dims, 2, SweepScheme::DimTree, MttkrpMethod::Auto,
                     /*max_levels=*/1);
  EXPECT_GT(full.levels(), one.levels());
  EXPECT_EQ(one.levels(), 1);
  CpAlsSweepPlan permode(ctx, dims, 2, SweepScheme::PerMode);
  EXPECT_EQ(permode.levels(), 0);
  EXPECT_EQ(permode.scheme(), SweepScheme::PerMode);
  // Auto heuristic: DimTree for N >= 4, PerMode below.
  CpAlsSweepPlan auto6(ctx, dims, 2, SweepScheme::Auto);
  EXPECT_EQ(auto6.requested_scheme(), SweepScheme::Auto);
  EXPECT_EQ(auto6.scheme(), SweepScheme::DimTree);
  CpAlsSweepPlan auto3(ctx, {std::vector<index_t>{4, 5, 6}}, 2,
                       SweepScheme::Auto);
  EXPECT_EQ(auto3.scheme(), SweepScheme::PerMode);
  // An explicit per-mode kernel pins PerMode under Auto even at N >= 4 —
  // the tree would silently discard the requested method otherwise.
  CpAlsSweepPlan pinned(ctx, dims, 2, SweepScheme::Auto,
                        MttkrpMethod::TwoStep);
  EXPECT_EQ(pinned.scheme(), SweepScheme::PerMode);
}

TEST(SweepSchemeAuto, HeuristicPicksDimTreeForHighOrderDenseOnly) {
  // The resolution rule itself: PerMode through order 3, DimTree from 4 —
  // and never a sparse scheme for dense input (sparse resolution happens
  // in the sparse plan constructor, not here).
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 2), SweepScheme::PerMode);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 3), SweepScheme::PerMode);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 4), SweepScheme::DimTree);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::Auto, 6), SweepScheme::DimTree);
  // An explicit per-mode kernel pins PerMode under Auto at any order.
  EXPECT_EQ(
      resolve_sweep_scheme(SweepScheme::Auto, 5, MttkrpMethod::TwoStep),
      SweepScheme::PerMode);
  EXPECT_EQ(resolve_sweep_scheme(SweepScheme::DimTree, 5,
                                 MttkrpMethod::TwoStep),
            SweepScheme::DimTree);  // explicit scheme still wins
  // The sparse resolver: Auto -> CSF, explicit schemes pass through.
  EXPECT_EQ(resolve_sparse_sweep_scheme(SweepScheme::Auto),
            SweepScheme::SparseCsf);
  EXPECT_EQ(resolve_sparse_sweep_scheme(SweepScheme::SparseCoo),
            SweepScheme::SparseCoo);
  // Explicit requests pass through untouched at any order.
  for (index_t order : {index_t{2}, index_t{5}}) {
    EXPECT_EQ(resolve_sweep_scheme(SweepScheme::PerMode, order),
              SweepScheme::PerMode);
    EXPECT_EQ(resolve_sweep_scheme(SweepScheme::DimTree, order),
              SweepScheme::DimTree);
    EXPECT_EQ(resolve_sweep_scheme(SweepScheme::SparseCsf, order),
              SweepScheme::SparseCsf);
  }
}


// ---------------------------------------------------------------------------
// Driver equivalence: DimTree and PerMode sweeps produce the same ALS
// iterates (algebraic rearrangement, not an approximation).
// ---------------------------------------------------------------------------

class SweepSchemeShapes
    : public ::testing::TestWithParam<std::vector<index_t>> {};

TEST_P(SweepSchemeShapes, DimTreeVsPerModeIterates) {
  const std::vector<index_t> dims = GetParam();
  Rng rng(51);
  Tensor X = Tensor::random_uniform(dims, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 4;
  opts.tol = 0.0;
  opts.seed = 9;
  CpAlsOptions pm = opts;
  pm.sweep_scheme = SweepScheme::PerMode;
  CpAlsOptions dt = opts;
  dt.sweep_scheme = SweepScheme::DimTree;
  const CpAlsResult pm_r = cp_als(X, pm);
  const CpAlsResult dt_r = cp_als(X, dt);
  ASSERT_EQ(pm_r.iterations, dt_r.iterations);
  EXPECT_NEAR(pm_r.final_fit, dt_r.final_fit, 1e-9);
  for (std::size_t n = 0; n < dims.size(); ++n) {
    EXPECT_LT(pm_r.model.factors[n].max_abs_diff(dt_r.model.factors[n]), 1e-7)
        << "factor " << n;
  }
  for (index_t c = 0; c < opts.rank; ++c) {
    EXPECT_NEAR(pm_r.model.lambda[static_cast<std::size_t>(c)],
                dt_r.model.lambda[static_cast<std::size_t>(c)], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SweepSchemeShapes,
    ::testing::Values(std::vector<index_t>{5, 6, 7},           // 3-way
                      std::vector<index_t>{4, 5, 3, 6},        // 4-way
                      std::vector<index_t>{3, 4, 2, 3, 4},     // 5-way
                      std::vector<index_t>{2, 3, 2, 2, 3, 2},  // 6-way
                      std::vector<index_t>{4, 1, 5, 3},        // extent-1 mode
                      std::vector<index_t>{2, 3, 2, 2}));      // rank > extents

void expect_same_result(const CpAlsResult& a, const CpAlsResult& b) {
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.final_fit, b.final_fit);
  ASSERT_EQ(a.model.factors.size(), b.model.factors.size());
  for (std::size_t n = 0; n < a.model.factors.size(); ++n) {
    EXPECT_EQ(a.model.factors[n].max_abs_diff(b.model.factors[n]), 0.0)
        << "factor " << n;
  }
}

TEST(SweepSchemeAuto, AutoDriverMatchesExplicitDimTreeOnFourWay) {
  Rng rng(59);
  Tensor X = Tensor::random_uniform({4, 5, 3, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 3;
  CpAlsOptions dt = opts;
  dt.sweep_scheme = SweepScheme::DimTree;
  expect_same_result(cp_als(X, opts), cp_als(X, dt));
}

TEST(SweepScheme, DimtreeWrapperPinsTheScheme) {
  Rng rng(52);
  Tensor X = Tensor::random_uniform({4, 5, 3, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 2;
  opts.max_iters = 3;
  CpAlsOptions dt = opts;
  dt.sweep_scheme = SweepScheme::DimTree;
  expect_same_result(cp_als_dimtree(X, opts), cp_als(X, dt));
}

TEST(SweepScheme, NnhalsRunsDimTree) {
  Rng rng(53);
  Tensor X = Tensor::random_uniform({5, 4, 3, 4}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 4;
  opts.tol = 0.0;
  CpAlsOptions dt = opts;
  dt.sweep_scheme = SweepScheme::DimTree;
  const CpAlsResult pm_r = cp_nnhals(X, opts);
  const CpAlsResult dt_r = cp_nnhals(X, dt);
  ASSERT_EQ(pm_r.iterations, dt_r.iterations);
  for (std::size_t n = 0; n < 4; ++n) {
    EXPECT_LT(pm_r.model.factors[n].max_abs_diff(dt_r.model.factors[n]), 1e-7);
  }
}

TEST(SweepScheme, SharedContextReusesOneArena) {
  // Two factorizations of the same shape through one context: results
  // match the private-context runs exactly, and the arena is grown only by
  // plan construction.
  Rng rng(54);
  Tensor X = Tensor::random_uniform({4, 5, 3, 6}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 3;
  opts.sweep_scheme = SweepScheme::DimTree;
  opts.threads = 2;
  const CpAlsResult solo_a = cp_als(X, opts);
  CpAlsOptions opts2 = opts;
  opts2.seed = 1234;
  const CpAlsResult solo_b = cp_als(X, opts2);

  ExecContext ctx(2);
  CpAlsOptions shared = opts;
  shared.exec = &ctx;
  CpAlsOptions shared2 = opts2;
  shared2.exec = &ctx;
  expect_same_result(solo_a, cp_als(X, shared));
  expect_same_result(solo_b, cp_als(X, shared2));
  EXPECT_EQ(ctx.arena().in_use(), 0u);
}

TEST(SweepScheme, DimTreeFillsSweepTimings) {
  Rng rng(55);
  Tensor X = Tensor::random_uniform({6, 5, 4, 3}, rng);
  CpAlsOptions opts;
  opts.rank = 3;
  opts.max_iters = 3;
  opts.tol = 0.0;
  opts.sweep_scheme = SweepScheme::DimTree;
  const CpAlsResult r = cp_als(X, opts);
  EXPECT_GT(r.sweep_timings.mttkrp_seconds, 0.0);
  ASSERT_FALSE(r.sweep_timings.nodes.empty());
  int leaves = 0;
  for (const SweepNodeTimings& tm : r.sweep_timings.nodes) {
    EXPECT_EQ(tm.evals, r.iterations);  // every node contracts once a sweep
    if (tm.leaf) ++leaves;
  }
  EXPECT_EQ(leaves, 4);
  // DimTree has no per-mode MttkrpPlans.
  EXPECT_EQ(r.mttkrp_timings.total, 0.0);
  // Per-sweep stats come from the plan, not ad-hoc stopwatches.
  ASSERT_EQ(static_cast<int>(r.iters.size()), r.iterations);
  EXPECT_GT(r.iters.front().mttkrp_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// The zero-allocation contract: after construction, a full dimension-tree
// sweep draws only from the already-reserved arena — including the BLAS
// packing workspaces of every node contraction.
// ---------------------------------------------------------------------------

TEST(SweepPlanDimTree, SweepIsAllocationFreeAfterConstruction) {
  Rng rng(56);
  const std::vector<index_t> dims{7, 6, 5, 4};
  Tensor X = Tensor::random_uniform(dims, rng);
  ExecContext ctx(3);
  CpAlsSweepPlan plan(ctx, X.dims(), 5, SweepScheme::DimTree);
  CpAlsSweepPlan one_level(ctx, X.dims(), 5, SweepScheme::DimTree,
                           MttkrpMethod::Auto, /*max_levels=*/1);

  const std::size_t grows = ctx.arena().grow_count();
  const std::size_t capacity = ctx.arena().capacity();
  const std::size_t blas_allocs = blas::gemm_internal_allocs();
  EXPECT_LE(plan.workspace_bytes(), capacity);
  EXPECT_LE(one_level.workspace_bytes(), capacity);

  Matrix M;
  for (int round = 0; round < 3; ++round) {
    std::vector<Matrix> fs = random_factors(dims, 5, rng);
    for (CpAlsSweepPlan* p : {&plan, &one_level}) {
      p->begin_sweep(X);
      for (index_t n = 0; n < X.order(); ++n) {
        p->mode_mttkrp(n, X, fs, M);
        // In-place factor updates between modes, as in a real sweep.
        fs[static_cast<std::size_t>(n)] =
            testing::random_factors(dims, 5, rng)[static_cast<std::size_t>(n)];
      }
    }
  }
  EXPECT_EQ(ctx.arena().grow_count(), grows);
  EXPECT_EQ(ctx.arena().capacity(), capacity);
  EXPECT_EQ(ctx.arena().in_use(), 0u);
  EXPECT_LE(ctx.arena().high_water(), capacity);
  EXPECT_EQ(blas::gemm_internal_allocs(), blas_allocs)
      << "a tree contraction fell back to the internal packing arena";
}

// ---------------------------------------------------------------------------
// Sweep protocol and validation.
// ---------------------------------------------------------------------------

TEST(SweepPlan, EnforcesInOrderProtocol) {
  Rng rng(57);
  const std::vector<index_t> dims{4, 3, 5};
  Tensor X = Tensor::random_uniform(dims, rng);
  const std::vector<Matrix> fs = random_factors(dims, 2, rng);
  ExecContext ctx(1);
  CpAlsSweepPlan plan(ctx, X.dims(), 2, SweepScheme::DimTree);
  Matrix M;
  // No begin_sweep yet.
  EXPECT_THROW(plan.mode_mttkrp(0, X, fs, M), DimensionError);
  plan.begin_sweep(X);
  // Out of order.
  EXPECT_THROW(plan.mode_mttkrp(1, X, fs, M), DimensionError);
  plan.mode_mttkrp(0, X, fs, M);
  // Repeat of a served mode.
  EXPECT_THROW(plan.mode_mttkrp(0, X, fs, M), DimensionError);
  plan.mode_mttkrp(1, X, fs, M);
  plan.mode_mttkrp(2, X, fs, M);
  // Sweep complete; the next sweep needs a fresh begin_sweep.
  EXPECT_THROW(plan.mode_mttkrp(0, X, fs, M), DimensionError);
  plan.begin_sweep(X);
  plan.mode_mttkrp(0, X, fs, M);
  expect_matrix_near(M, mttkrp(X, fs, 0, MttkrpMethod::Reference), 1e-10);
}

TEST(SweepPlan, ValidationErrors) {
  ExecContext ctx(1);
  const std::vector<index_t> dims{4, 5, 6};
  EXPECT_THROW(CpAlsSweepPlan(ctx, dims, 0, SweepScheme::DimTree),
               DimensionError);
  EXPECT_THROW(
      CpAlsSweepPlan(ctx, {std::vector<index_t>{7}}, 3, SweepScheme::DimTree),
      DimensionError);

  Rng rng(58);
  CpAlsSweepPlan plan(ctx, dims, 3, SweepScheme::DimTree);
  Tensor Y = Tensor::random_uniform({4, 5, 7}, rng);
  EXPECT_THROW(plan.begin_sweep(Y), DimensionError);
  Tensor X = Tensor::random_uniform(dims, rng);
  plan.begin_sweep(X);
  Matrix M;
  std::vector<Matrix> bad = random_factors(dims, 4, rng);  // wrong rank
  EXPECT_THROW(plan.mode_mttkrp(0, X, bad, M), DimensionError);
}

TEST(SweepBalancedSplit, GeneralizesDimtreeSplit) {
  EXPECT_EQ(dimtree_split(Tensor({4, 4, 4, 4})), 2);
  EXPECT_EQ(dimtree_split(Tensor({100, 2, 2})), 1);
  EXPECT_EQ(dimtree_split(Tensor({2, 2, 100})), 2);
  EXPECT_EQ(dimtree_split(Tensor({7, 9})), 1);
  // Sub-interval splits used by the deeper tree levels.
  const std::vector<index_t> dims{2, 2, 100, 3};
  EXPECT_EQ(sweep_balanced_split(dims, 0, 2), 1);
  EXPECT_EQ(sweep_balanced_split(dims, 1, 4), 3);
}

TEST(SweepSchemeParse, RoundTripsAndAliases) {
  for (SweepScheme s :
       {SweepScheme::Auto, SweepScheme::PerMode, SweepScheme::DimTree,
        SweepScheme::SparseCsf, SweepScheme::SparseCoo}) {
    const auto parsed = parse_sweep_scheme(to_string(s));
    ASSERT_TRUE(parsed.has_value()) << to_string(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(parse_sweep_scheme("per-mode"), SweepScheme::PerMode);
  EXPECT_EQ(parse_sweep_scheme("dim-tree"), SweepScheme::DimTree);
  EXPECT_EQ(parse_sweep_scheme("csf"), SweepScheme::SparseCsf);
  EXPECT_EQ(parse_sweep_scheme("sparse-csf"), SweepScheme::SparseCsf);
  EXPECT_EQ(parse_sweep_scheme("coo"), SweepScheme::SparseCoo);
  EXPECT_EQ(parse_sweep_scheme("sparse-coo"), SweepScheme::SparseCoo);
  EXPECT_FALSE(parse_sweep_scheme("").has_value());
  EXPECT_FALSE(parse_sweep_scheme("tree").has_value());
}

}  // namespace
}  // namespace dmtk
