/// \file bench_fig8_fmri_breakdown.cpp
/// Reproduces Figure 8 (a-d): per-phase MTTKRP breakdown on the 3D and 4D
/// fMRI application tensors (non-uniform mode sizes), sequential and
/// parallel, C = 25. The interesting contrast with Figure 6 is the small
/// subject mode (59 in the paper): its MTTKRP has a relatively higher KRP
/// cost, and both proposed algorithms beat the baseline clearly in parallel
/// (paper: 2.8x / 3.5x for mode 1).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "sim/fmri.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

void run_tensor(const char* name, const Tensor& X, index_t C, int threads,
                int trials, Rng& rng) {
  std::printf("\n--- %s tensor, T = %d ---\n", name, threads);
  ExecContext ctx(threads);
  std::vector<Matrix> fs;
  for (index_t n = 0; n < X.order(); ++n) {
    fs.push_back(Matrix::random_uniform(X.dim(n), C, rng));
  }
  for (index_t mode = 0; mode < X.order(); ++mode) {
    // Baseline: one GEMM of the matching dimensions.
    Matrix A = Matrix::random_uniform(X.dim(mode), X.cosize(mode), rng);
    Matrix B = Matrix::random_uniform(X.cosize(mode), C, rng);
    Matrix M(X.dim(mode), C);
    const double base = time_median(trials, [&] {
      blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                 blas::Trans::NoTrans, X.dim(mode), C, X.cosize(mode), 1.0,
                 A.data(), A.ld(), B.data(), B.ld(), 0.0, M.data(), M.ld(),
                 threads);
    });
    std::printf("  B  mode=%lld  gemm=%-8.4f\n",
                static_cast<long long>(mode), base);

    // One plan per (mode, method); the plan's own timings accumulate
    // across the repeated executes.
    MttkrpPlan p1(ctx, X.dims(), C, mode, MttkrpMethod::OneStep);
    for (int i = 0; i < trials; ++i) {
      p1.execute(X, fs, M);
    }
    const MttkrpTimings& t1 = p1.timings();
    std::printf("  1S mode=%lld  krp=%-8.4f lrkrp=%-8.4f gemm=%-8.4f "
                "reduce=%-8.4f total=%-8.4f\n",
                static_cast<long long>(mode), t1.krp / trials,
                t1.krp_lr / trials, t1.gemm / trials, t1.reduce / trials,
                t1.total / trials);
    if (twostep_is_defined(X.order(), mode)) {
      MttkrpPlan p2(ctx, X.dims(), C, mode, MttkrpMethod::TwoStep);
      for (int i = 0; i < trials; ++i) {
        p2.execute(X, fs, M);
      }
      const MttkrpTimings& t2 = p2.timings();
      std::printf("  2S mode=%lld  lrkrp=%-8.4f gemm=%-8.4f gemv=%-8.4f "
                  "total=%-8.4f\n",
                  static_cast<long long>(mode), t2.krp_lr / trials,
                  t2.gemm / trials, t2.gemv / trials, t2.total / trials);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.2);
  bench::banner("Figure 8: MTTKRP breakdown on fMRI tensors", args);

  sim::FmriOptions fo;
  fo.regions = std::max<index_t>(
      8, static_cast<index_t>(std::llround(200 * args.scale)));
  fo.time_steps = std::max<index_t>(
      16, static_cast<index_t>(std::llround(225 * std::sqrt(args.scale))));
  fo.subjects = std::max<index_t>(
      8, static_cast<index_t>(std::llround(59 * std::sqrt(args.scale))));
  fo.components = 5;
  const sim::FmriData data = sim::make_fmri_tensor(fo);
  const Tensor X3 = sim::symmetrize_linearize(data.tensor);
  Rng rng(31);
  const int tmax =
      *std::max_element(args.threads.begin(), args.threads.end());

  for (int t : {1, tmax}) {
    run_tensor("3D", X3, 25, t, args.trials, rng);
    run_tensor("4D", data.tensor, 25, t, args.trials, rng);
  }
  std::printf(
      "\nexpected shape (paper 5.3.3/Fig 8): KRP share largest for the small"
      "\nsubject mode; 2-step consistently beats baseline, strongly in "
      "parallel.\n");
  return 0;
}
