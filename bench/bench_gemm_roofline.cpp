// GEMM roofline: GFLOP/s of the blocked kernel across micro-kernels
// (scalar vs AVX2 tiles), scalar types (fp64 vs fp32 — the bandwidth
// economy of the templated core), thread counts, and shapes — square GEMMs
// plus the MTTKRP-shaped ones the paper's figures are bounded by
// (tall-skinny external-mode products and the batched small-block sweep of
// the internal mode). Writes the BENCH_*.json perf-trajectory record
// consumed by tools/run_benches.sh, and doubles as the CI equivalence
// smoke check (--check: every kernel, in both precisions, must agree with
// its scalar reference).
//
// usage: bench_gemm_roofline [--sizes csv] [--threads csv] [--trials n]
//                            [--json path] [--check] [--tiny]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "blas/cpu_features.hpp"
#include "util/env.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using dmtk::index_t;
using dmtk::Rng;

struct Shape {
  const char* tag;   // "square" | "skinny" | "batched"
  index_t m, n, k;
  index_t batch;     // 1 = plain gemm, > 1 = gemm_batched sweep
};

struct Result {
  Shape shape;
  dmtk::blas::SimdLevel level;
  const char* precision;  // "f64" | "f32"
  int threads;
  double seconds;
  double gflops;
};

std::vector<int> parse_csv_ints(const char* csv) {
  std::vector<int> out;
  const std::string s(csv);
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  return out;
}

std::string cpu_model_name() {
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "r")) {
    char line[512];
    while (std::fgets(line, sizeof(line), f)) {
      if (std::strncmp(line, "model name", 10) == 0) {
        std::fclose(f);
        const char* colon = std::strchr(line, ':');
        std::string name = colon ? colon + 2 : line;
        while (!name.empty() && (name.back() == '\n' || name.back() == ' ')) {
          name.pop_back();
        }
        return name;
      }
    }
    std::fclose(f);
  }
  return "unknown";
}

/// One timed case at scalar type T. For batch > 1 the shape describes ONE
/// item; the sweep multiplies batch items into batch separate outputs.
template <typename T>
double run_case(const Shape& s, int threads, int trials,
                const std::vector<T>& A, const std::vector<T>& B,
                std::vector<T>& C) {
  using namespace dmtk::blas;
  if (s.batch <= 1) {
    return dmtk::time_median(trials, [&] {
      gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, s.m, s.n, s.k,
           T{1}, A.data(), s.m, B.data(), s.k, T{0}, C.data(), s.m, threads);
    });
  }
  std::vector<const T*> ap(static_cast<std::size_t>(s.batch));
  std::vector<const T*> bp(static_cast<std::size_t>(s.batch));
  std::vector<T*> cp(static_cast<std::size_t>(s.batch));
  for (index_t i = 0; i < s.batch; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    ap[si] = A.data() + (i % 4) * s.m;  // reuse the allocation, shift a bit
    bp[si] = B.data() + (i % 4) * s.k;
    cp[si] = C.data() + si * static_cast<std::size_t>(s.m * s.n);
  }
  return dmtk::time_median(trials, [&] {
    gemm_batched(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, s.m, s.n,
                 s.k, T{1}, ap.data(), s.m, bp.data(), s.k, T{0}, cp.data(),
                 s.m, s.batch, threads);
  });
}

/// --check, one precision: every dispatchable kernel must reproduce the
/// scalar kernel's result to rounding in T (FMA changes the last ulps,
/// nothing more).
template <typename T>
bool check_equivalence_t(const char* prec, double ulp) {
  using namespace dmtk::blas;
  const index_t m = 129, n = 67, k = 173;
  Rng rng(7);
  std::vector<T> A(static_cast<std::size_t>(m * k));
  std::vector<T> B(static_cast<std::size_t>(k * n));
  dmtk::fill_uniform(A, rng, -1.0, 1.0);
  dmtk::fill_uniform(B, rng, -1.0, 1.0);
  std::vector<T> Cref(static_cast<std::size_t>(m * n), T{0});
  set_simd_level(SimdLevel::Scalar);
  gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, T{1},
       A.data(), m, B.data(), k, T{0}, Cref.data(), m, 2);
  bool ok = true;
  for (SimdLevel lvl : supported_simd_levels()) {
    if (lvl == SimdLevel::Scalar) continue;  // the reference itself
    if (set_simd_level(lvl) != lvl) continue;  // not on this hardware
    std::vector<T> C(static_cast<std::size_t>(m * n), T{0});
    gemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, T{1},
         A.data(), m, B.data(), k, T{0}, C.data(), m, 2);
    double max_diff = 0.0;
    for (std::size_t i = 0; i < C.size(); ++i) {
      max_diff = std::max(max_diff,
                          std::abs(static_cast<double>(C[i]) -
                                   static_cast<double>(Cref[i])));
    }
    const double tol = ulp * static_cast<double>(k);
    std::printf("check %-8s %s vs scalar: max|diff| = %.3e (tol %.3e) %s\n",
                std::string(to_string(lvl)).c_str(), prec, max_diff, tol,
                max_diff <= tol ? "OK" : "FAIL");
    if (max_diff > tol) ok = false;
  }
  return ok;
}

/// --check, both precisions (restores the entry dispatch level).
bool check_equivalence() {
  using namespace dmtk::blas;
  const SimdLevel entry_level = simd_level();
  const bool ok = check_equivalence_t<double>("f64", 1e-12) &
                  check_equivalence_t<float>("f32", 1e-4);
  set_simd_level(entry_level);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk::blas;
  std::vector<int> sizes{256, 512, 1024};
  std::vector<int> threads{1, 2, 4};
  int trials = 3;
  const char* json_path = nullptr;
  bool do_check = false;
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* { return (i + 1 < argc) ? argv[++i] : ""; };
    if (arg == "--sizes") {
      sizes = parse_csv_ints(next());
    } else if (arg == "--threads") {
      threads = parse_csv_ints(next());
    } else if (arg == "--trials") {
      trials = std::max(1, std::atoi(next()));
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--check") {
      do_check = true;
    } else if (arg == "--tiny") {
      tiny = true;
      sizes = {64, 128};
      threads = {1, 2};
      trials = 1;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--sizes csv] [--threads csv] [--trials n] "
          "[--json path] [--check] [--tiny]\n",
          argv[0]);
      return 0;
    }
  }

  std::printf("=== gemm roofline ===\n");
  std::printf("cpu: %s\n", cpu_model_name().c_str());
  // "dispatch simd" reflects the DMTK_SIMD override (if any); CI greps it
  // to prove the env path actually installs the requested kernel.
  std::printf("hardware_threads=%d  detected simd=%s  dispatch simd=%s  "
              "trials=%d\n",
              dmtk::hardware_threads(),
              std::string(to_string(hardware_simd_level())).c_str(),
              std::string(to_string(simd_level())).c_str(), trials);

  if (do_check && !check_equivalence()) {
    std::fprintf(stderr, "kernel equivalence check FAILED\n");
    return 1;
  }

  // Shapes: square cubes plus MTTKRP-shaped cases — a tall-skinny
  // external-mode product (m = I_n, n = C, k = column block) and the
  // internal-mode batched sweep of small per-block multiplies.
  std::vector<Shape> shapes;
  for (int s : sizes) {
    shapes.push_back({"square", s, s, s, 1});
  }
  if (tiny) {
    shapes.push_back({"skinny", 2048, 16, 128, 1});
    shapes.push_back({"batched", 128, 16, 32, 16});
  } else {
    shapes.push_back({"skinny", 65536, 16, 256, 1});
    shapes.push_back({"skinny", 16384, 32, 1024, 1});
    shapes.push_back({"batched", 512, 16, 64, 128});
  }

  // Under a DMTK_SIMD override, measure ONLY the level the env installed —
  // the run then genuinely exercises the override path instead of
  // re-selecting every kernel itself. Without one, sweep all of them.
  std::vector<SimdLevel> levels;
  if (std::getenv("DMTK_SIMD") != nullptr) {
    levels.push_back(simd_level());
  } else {
    // The full ladder this hardware can dispatch (scalar included) — new
    // levels join the sweep the day their kernels land.
    levels = supported_simd_levels();
  }

  const SimdLevel entry_level = simd_level();
  std::vector<Result> results;
  std::printf("%-8s %22s %9s %5s %8s %10s %12s\n", "case",
              "m x n x k (xbatch)", "kernel", "prec", "threads", "seconds",
              "GFLOP/s");
  for (const Shape& s : shapes) {
    const std::size_t asz = static_cast<std::size_t>(s.m * s.k) + 4 * 512;
    const std::size_t bsz = static_cast<std::size_t>(s.k * s.n) + 4 * 512;
    const std::size_t csz =
        static_cast<std::size_t>(s.m * s.n) *
        static_cast<std::size_t>(s.batch > 1 ? s.batch : 1);
    Rng rng(1234);
    std::vector<double> Ad(asz), Bd(bsz), Cd(csz, 0.0);
    dmtk::fill_uniform(Ad, rng, -1.0, 1.0);
    dmtk::fill_uniform(Bd, rng, -1.0, 1.0);
    std::vector<float> Af(Ad.begin(), Ad.end());
    std::vector<float> Bf(Bd.begin(), Bd.end());
    std::vector<float> Cf(csz, 0.0f);
    const double flops = 2.0 * static_cast<double>(s.m) *
                         static_cast<double>(s.n) * static_cast<double>(s.k) *
                         static_cast<double>(s.batch > 1 ? s.batch : 1);
    for (SimdLevel lvl : levels) {
      if (set_simd_level(lvl) != lvl) continue;
      // Each vector family has ONE float kernel (f8x8 for AVX2, f16x16 for
      // AVX-512) serving both of its f64 levels, so in a full sweep the
      // family's narrower level would just re-time the same f32 kernel
      // under a misleading label; skip those legs (a DMTK_SIMD override
      // sweeps a single level and keeps its f32 row).
      const bool skip_f32 = (lvl == SimdLevel::Avx2x4x8 ||
                             lvl == SimdLevel::Avx512x8x16) &&
                            levels.size() > 1;
      for (int t : threads) {
        for (int prec = 0; prec < (skip_f32 ? 1 : 2); ++prec) {
          const bool f32 = prec == 1;
          const double sec = f32 ? run_case<float>(s, t, trials, Af, Bf, Cf)
                                 : run_case<double>(s, t, trials, Ad, Bd, Cd);
          const double gf = flops / sec / 1e9;
          results.push_back({s, lvl, f32 ? "f32" : "f64", t, sec, gf});
          char shape_buf[64];
          std::snprintf(shape_buf, sizeof(shape_buf),
                        "%lldx%lldx%lld%s", static_cast<long long>(s.m),
                        static_cast<long long>(s.n),
                        static_cast<long long>(s.k),
                        s.batch > 1 ? " xB" : "");
          std::printf("%-8s %22s %9s %5s %8d %10.4f %12.2f\n", s.tag,
                      shape_buf, std::string(to_string(lvl)).c_str(),
                      f32 ? "f32" : "f64", t, sec, gf);
        }
      }
    }
  }
  set_simd_level(entry_level);

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    char date[32] = "unknown";
    const std::time_t now = std::time(nullptr);
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%SZ",
                  std::gmtime(&now));
    std::fprintf(f, "{\n  \"bench\": \"gemm_roofline\",\n");
    std::fprintf(f, "  \"date\": \"%s\",\n", date);
    std::fprintf(f, "  \"machine\": {\n    \"cpu\": \"%s\",\n",
                 cpu_model_name().c_str());
    std::fprintf(f, "    \"hardware_threads\": %d,\n",
                 dmtk::hardware_threads());
    std::fprintf(f, "    \"simd_detected\": \"%s\"\n  },\n",
                 std::string(to_string(hardware_simd_level())).c_str());
    std::fprintf(f, "  \"trials\": %d,\n  \"cases\": [\n", trials);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const Result& r = results[i];
      std::fprintf(
          f,
          "    {\"case\": \"%s\", \"m\": %lld, \"n\": %lld, \"k\": %lld, "
          "\"batch\": %lld, \"kernel\": \"%s\", \"precision\": \"%s\", "
          "\"threads\": %d, \"median_seconds\": %.6f, \"gflops\": %.3f}%s\n",
          r.shape.tag, static_cast<long long>(r.shape.m),
          static_cast<long long>(r.shape.n), static_cast<long long>(r.shape.k),
          static_cast<long long>(r.shape.batch),
          std::string(to_string(r.level)).c_str(), r.precision, r.threads,
          r.seconds, r.gflops, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
