/// \file bench_serve.cpp
/// The serving argument in numbers: a resident server amortizes plan
/// construction (and context/arena setup) across requests, so a repeat
/// decompose through the warm plan cache must beat the cold-start path —
/// which pays the batch CLI's per-invocation cost (fresh ExecContext +
/// transient plan) on every request. Measures client-observed round-trip
/// latency over a real Unix socket, cold (cold:true requests, cache
/// bypassed) vs warm (cached plan), plus a same-shape MTTKRP burst that
/// exercises request coalescing into one gemm_batched sweep. --json
/// writes the BENCH_serve.json record.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/tensor.hpp"
#include "io/tensor_io.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

serve::Json decompose_req(const std::string& tensor, index_t rank,
                          bool cold) {
  serve::Json r;
  r.set("type", serve::Json("decompose"));
  r.set("tensor", serve::Json(tensor));
  r.set("rank", serve::Json(rank));
  r.set("iters", serve::Json(1));
  r.set("tol", serve::Json(0.0));
  r.set("sweep", serve::Json("permode"));
  r.set("inline_model", serve::Json(false));
  if (cold) r.set("cold", serve::Json(true));
  return r;
}

/// One request-response round trip, client-observed milliseconds.
double roundtrip_ms(serve::Client& c, const serve::Json& req) {
  WallTimer t;
  const serve::Json resp = c.roundtrip(req);
  const double ms = t.seconds() * 1e3;
  const serve::Json* ok = resp.find("ok");
  if (ok == nullptr || !ok->as_bool()) {
    std::fprintf(stderr, "request failed: %s\n", resp.dump().c_str());
    std::exit(1);
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf("bench-specific: --json <path>  write the BENCH_serve.json "
                  "record\n");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs an output path\n");
        return 1;
      }
      json_path = argv[++i];
    }
  }
  bench::Args args = bench::Args::parse(argc, argv, 0.001);
  bench::banner("serve: warm plan cache vs cold start", args);

  // Workload: one (shape, rank) repeated — the resident server's sweet
  // spot. Sized from --scale like the other benches.
  const index_t dim = bench::cube_dim(3, args.scale);
  const index_t rank = 16;
  const int trials = std::max(10, args.trials * 10);

  char tmpl[] = "/tmp/dmtk_bench_serve_XXXXXX";
  if (mkdtemp(tmpl) == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::filesystem::path work(tmpl);
  const std::string tensor = (work / "cube.dten").string();
  {
    Rng rng(5);
    io::write_tensor(tensor, Tensor::random_uniform({dim, dim, dim}, rng));
  }

  serve::ServeOptions so;
  so.socket = (work / "dmtk.sock").string();
  so.workers = 1;
  so.threads = 1;
  serve::Server server(so);
  server.start();

  serve::Client client;
  client.connect(so.socket);

  std::printf("workload: %lld^3 tensor, rank %lld, 1 sweep, %d trials\n",
              static_cast<long long>(dim), static_cast<long long>(rank),
              trials);

  // Cold: every request pays context + plan construction (cache bypassed).
  std::vector<double> cold_ms;
  for (int t = 0; t < trials; ++t) {
    cold_ms.push_back(
        roundtrip_ms(client, decompose_req(tensor, rank, true)));
  }

  // Warm: one miss builds the cached plan, then every repeat hits it.
  roundtrip_ms(client, decompose_req(tensor, rank, false));
  std::vector<double> warm_ms;
  for (int t = 0; t < trials; ++t) {
    warm_ms.push_back(
        roundtrip_ms(client, decompose_req(tensor, rank, false)));
  }

  const double cold_p50 = median(cold_ms);
  const double warm_p50 = median(warm_ms);
  const double cold_p90 = percentile(cold_ms, 0.9);
  const double warm_p90 = percentile(warm_ms, 0.9);

  bench::print_rule();
  std::printf("%-28s %10s %10s\n", "decompose latency (ms)", "p50", "p90");
  std::printf("%-28s %10.3f %10.3f\n", "cold (fresh ctx + plan)", cold_p50,
              cold_p90);
  std::printf("%-28s %10.3f %10.3f\n", "warm (cached plan)", warm_p50,
              warm_p90);
  std::printf("%-28s %10.2fx\n", "warm speedup (p50)", cold_p50 / warm_p50);

  // MTTKRP burst: fire same-shape requests back to back on one
  // connection, then read all responses — queued requests coalesce into
  // one gemm_batched sweep.
  const int burst = 8;
  serve::Json mreq;
  mreq.set("type", serve::Json("mttkrp"));
  mreq.set("tensor", serve::Json(tensor));
  mreq.set("rank", serve::Json(rank));
  mreq.set("mode", serve::Json(1));
  WallTimer burst_t;
  for (int i = 0; i < burst; ++i) client.send_line(mreq.dump());
  for (int i = 0; i < burst; ++i) {
    const auto line = client.recv_line();
    if (!line) {
      std::fprintf(stderr, "server hung up during the mttkrp burst\n");
      return 1;
    }
  }
  const double burst_ms = burst_t.seconds() * 1e3;
  std::printf("%-28s %10.3f  (%d requests, %.3f ms each)\n",
              "mttkrp burst total (ms)", burst_ms, burst,
              burst_ms / burst);

  serve::Json stats_req;
  stats_req.set("type", serve::Json("stats"));
  const serve::Json stats = client.roundtrip(stats_req);
  const serve::Json* queue = stats.find("queue");
  const double max_batch =
      queue != nullptr ? queue->find("max_batch_observed")->as_number() : 0.0;
  std::printf("%-28s %10.0f\n", "max batch observed", max_batch);

  if (json_path != nullptr) {
    serve::Json rec;
    rec.set("bench", serve::Json("serve_warm_vs_cold"));
    serve::Json wl;
    wl.set("dims", serve::Json(std::to_string(dim) + "x" +
                               std::to_string(dim) + "x" +
                               std::to_string(dim)));
    wl.set("rank", serve::Json(rank));
    wl.set("sweeps", serve::Json(1));
    wl.set("trials", serve::Json(trials));
    rec.set("workload", wl);
    serve::Json cold;
    cold.set("p50_ms", serve::Json(cold_p50));
    cold.set("p90_ms", serve::Json(cold_p90));
    rec.set("cold", cold);
    serve::Json warm;
    warm.set("p50_ms", serve::Json(warm_p50));
    warm.set("p90_ms", serve::Json(warm_p90));
    rec.set("warm", warm);
    rec.set("warm_speedup_p50", serve::Json(cold_p50 / warm_p50));
    serve::Json mt;
    mt.set("burst_requests", serve::Json(burst));
    mt.set("burst_total_ms", serve::Json(burst_ms));
    mt.set("max_batch_observed", serve::Json(max_batch));
    rec.set("mttkrp", mt);
    rec.set("server_stats", stats);
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::perror("fopen --json path");
      return 1;
    }
    const std::string text = rec.dump();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  serve::Json shutdown_req;
  shutdown_req.set("type", serve::Json("shutdown"));
  (void)client.roundtrip(shutdown_req);  // ack content is irrelevant here
  server.wait();
  server.stop();
  std::filesystem::remove_all(work);

  const bool warm_wins = warm_p50 < cold_p50;
  std::printf("warm-beats-cold: %s\n", warm_wins ? "yes" : "NO");
  return warm_wins ? 0 : 1;
}
