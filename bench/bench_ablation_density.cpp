/// \file bench_ablation_density.cpp
/// Quantifies the paper's motivating claim: dense tensors deserve dense
/// kernels. A SPLATT-style COO sparse MTTKRP processes only the nonzeros
/// but pays per-nonzero indexing and scatter costs; the paper's dense
/// kernels stream contiguous memory through BLAS. This ablation sweeps the
/// density of a fixed-shape tensor and reports the crossover where the
/// dense 2-step/1-step MTTKRP overtakes the sparse kernel.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "sparse/sparse_tensor.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.002);
  bench::banner("Ablation: dense vs sparse MTTKRP across density", args);

  const index_t d = bench::cube_dim(3, args.scale);
  Rng rng(23);
  const index_t C = 25;
  std::vector<Matrix> fs;
  for (int n = 0; n < 3; ++n) fs.push_back(Matrix::random_uniform(d, C, rng));
  const int t = args.threads.back();
  // Pinned dense kernel (override with --method); the shape is fixed, so
  // one plan serves every density point.
  const MttkrpMethod dense_m =
      args.method_set ? args.method : MttkrpMethod::TwoStep;
  ExecContext ctx(t);
  const std::vector<index_t> dims{d, d, d};
  MttkrpPlan dense_plan(ctx, dims, C, 1, dense_m);

  std::printf("tensor %lld^3, C = %lld, threads = %d, dense method = %s\n",
              static_cast<long long>(d), static_cast<long long>(C), t,
              std::string(to_string(dense_plan.resolved_method())).c_str());
  std::printf("%-10s %-12s %-14s %-14s %-10s\n", "density", "nnz",
              "dense-2step(s)", "sparse-coo(s)", "dense-wins");
  bench::print_rule(64);

  for (double density : {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    // Dense tensor with the requested fill; the dense kernel's cost is
    // density-independent, the sparse kernel's is linear in nnz.
    Tensor X({d, d, d});
    Rng fill = rng.split();
    for (index_t l = 0; l < X.numel(); ++l) {
      if (fill.uniform() < density) X[l] = fill.uniform(-1.0, 1.0);
    }
    const sparse::SparseTensor S = sparse::SparseTensor::from_dense(X);

    Matrix M(d, C);
    const double dense_s = time_median(args.trials, [&] {
      dense_plan.execute(X, fs, M);
    });
    const double sparse_s = time_median(args.trials, [&] {
      sparse::mttkrp(S, fs, 1, M, t);
    });
    std::printf("%-10.3f %-12lld %-14.4f %-14.4f %-10s\n", density,
                static_cast<long long>(S.nnz()), dense_s, sparse_s,
                dense_s < sparse_s ? "yes" : "no");
  }
  std::printf(
      "\nexpected: sparse wins at very low density, dense takes over well "
      "below\nfull density — the regime the paper targets (dense data, e.g. "
      "fMRI\ncorrelations, has density 1.0).\n");
  return 0;
}
