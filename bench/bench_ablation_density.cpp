/// \file bench_ablation_density.cpp
/// Quantifies the paper's motivating claim: dense tensors deserve dense
/// kernels. Since PR 4 every contender runs through the plan layer —
/// dense 2-step via MttkrpPlan, sparse COO and CSF via SparseMttkrpPlan —
/// so all sides enjoy planned dispatch, precomputed thread tiling, and
/// heap-free arena execution, and the crossover is a kernel comparison
/// rather than an allocation-strategy artifact. The bench sweeps the
/// density of a fixed-shape tensor and reports where the dense kernel
/// overtakes each sparse one, with an fp32-storage CSF column showing the
/// bandwidth headroom of the float instantiation; --json writes the
/// BENCH_*.json record and --check turns the run into a CSF/COO/dense
/// (plus f32-vs-f64) equivalence gate (CI's bench-smoke uses it).

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "exec/sparse_mttkrp_plan.hpp"
#include "sparse/sparse_tensor.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

struct Case {
  double density = 0.0;
  long long nnz = 0;
  double dense_s = 0.0;
  double coo_s = 0.0;
  double csf_s = 0.0;
  double csf32_s = 0.0;  ///< fp32-storage CSF plan (fp64 accumulators)
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const char* json_path = nullptr;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "bench-specific: --json <path>  write the BENCH_*.json record\n"
          "                --check        verify CSF == COO == dense (and\n"
          "                               f32 CSF vs f64 to fp32 rounding),\n"
          "                               fail on divergence\n");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs an output path\n");
        return 1;
      }
      json_path = argv[i + 1];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    }
  }
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.002);
  bench::banner("Ablation: dense vs sparse MTTKRP across density (plans)",
                args);

  const index_t d = bench::cube_dim(3, args.scale);
  Rng rng(23);
  const index_t C = 25;
  std::vector<Matrix> fs;
  for (int n = 0; n < 3; ++n) fs.push_back(Matrix::random_uniform(d, C, rng));
  std::vector<MatrixF> fsf;
  for (const Matrix& U : fs) fsf.push_back(matrix_cast<float>(U));
  const int t = args.threads.back();
  // Pinned dense kernel (override with --method); the shape is fixed, so
  // one plan serves every density point.
  const MttkrpMethod dense_m =
      args.method_set ? args.method : MttkrpMethod::TwoStep;
  ExecContext ctx(t);
  const std::vector<index_t> dims{d, d, d};
  MttkrpPlan dense_plan(ctx, dims, C, 1, dense_m);

  std::printf("tensor %lld^3, C = %lld, threads = %d, dense method = %s\n",
              static_cast<long long>(d), static_cast<long long>(C), t,
              std::string(to_string(dense_plan.resolved_method())).c_str());
  std::printf("%-10s %-12s %-13s %-13s %-13s %-13s %-11s\n", "density", "nnz",
              "dense(s)", "coo-plan(s)", "csf-plan(s)", "csf-f32(s)",
              "dense-wins");
  bench::print_rule(90);

  std::vector<Case> cases;
  int failures = 0;
  for (double density : {0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    // Dense tensor with the requested fill; the dense kernel's cost is
    // density-independent, the sparse kernels' is ~linear in nnz.
    Tensor X({d, d, d});
    Rng fill = rng.split();
    for (index_t l = 0; l < X.numel(); ++l) {
      if (fill.uniform() < density) X[l] = fill.uniform(-1.0, 1.0);
    }
    const sparse::SparseTensor S = sparse::SparseTensor::from_dense(X);
    const sparse::SparseTensorF Sf = sparse::sparse_cast<float>(S);
    // Plan construction (CSF build included) is amortized setup, outside
    // the timed region — the ALS steady state this bench models.
    SparseMttkrpPlan coo_plan(ctx, S, C, SparseMttkrpKernel::Coo);
    SparseMttkrpPlan csf_plan(ctx, S, C, SparseMttkrpKernel::Csf);
    SparseMttkrpPlanF csf32_plan(ctx, Sf, C, SparseMttkrpKernel::Csf);

    Matrix M(d, C);
    MatrixF M32(d, C);
    Case c;
    c.density = density;
    c.nnz = static_cast<long long>(S.nnz());
    c.dense_s = time_median(args.trials, [&] { dense_plan.execute(X, fs, M); });
    c.coo_s = time_median(args.trials, [&] { coo_plan.execute(1, fs, M); });
    c.csf_s = time_median(args.trials, [&] { csf_plan.execute(1, fs, M); });
    c.csf32_s =
        time_median(args.trials, [&] { csf32_plan.execute(1, fsf, M32); });
    cases.push_back(c);
    std::printf("%-10.3f %-12lld %-13.4f %-13.4f %-13.4f %-13.4f %-11s\n",
                density, c.nnz, c.dense_s, c.coo_s, c.csf_s, c.csf32_s,
                c.dense_s < c.csf_s ? "yes" : "no");

    if (check) {
      // The three paths must agree (the property suite checks this on
      // small shapes; here it runs at bench scale as a smoke gate).
      Matrix Mcsf, Mcoo;
      csf_plan.execute(1, fs, Mcsf);
      coo_plan.execute(1, fs, Mcoo);
      dense_plan.execute(X, fs, M);
      csf32_plan.execute(1, fsf, M32);
      const double csf_vs_coo = Mcsf.max_abs_diff(Mcoo);
      const double csf_vs_dense = Mcsf.max_abs_diff(M);
      const double tol = 1e-8 * static_cast<double>(S.nnz() + 1);
      if (csf_vs_coo > tol || csf_vs_dense > tol) {
        std::fprintf(stderr,
                     "CHECK FAILED at density %.3f: |csf-coo| = %.3e, "
                     "|csf-dense| = %.3e (tol %.3e)\n",
                     density, csf_vs_coo, csf_vs_dense, tol);
        ++failures;
      }
      // The fp32 plan accumulates in fp64, so it tracks the double CSF to
      // input/output rounding — a loose fp32-scaled bound is enough to
      // catch a broken float instantiation.
      double f32_vs_csf = 0.0;
      for (index_t l = 0; l < Mcsf.rows() * Mcsf.cols(); ++l) {
        const double diff =
            std::abs(static_cast<double>(M32.data()[l]) - Mcsf.data()[l]);
        if (diff > f32_vs_csf) f32_vs_csf = diff;
      }
      const double tol32 = 1e-4 * static_cast<double>(S.nnz() + 1);
      if (f32_vs_csf > tol32) {
        std::fprintf(stderr,
                     "CHECK FAILED at density %.3f: |csf32-csf| = %.3e "
                     "(tol %.3e)\n",
                     density, f32_vs_csf, tol32);
        ++failures;
      }
    }
  }
  std::printf(
      "\nexpected: sparse wins at very low density; the CSF plan beats the\n"
      "COO plan wherever fibers repeat; dense takes over well below full\n"
      "density — the regime the paper targets (dense data, e.g. fMRI\n"
      "correlations, has density 1.0). The fp32 CSF column streams half\n"
      "the value bytes per nonzero (accumulators stay fp64 either way).\n");
  if (check) {
    std::printf("equivalence check: %s\n", failures == 0 ? "PASS" : "FAIL");
  }

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"ablation_density_plans\",\n");
    std::fprintf(f, "  \"schema\": 1,\n");
    std::fprintf(f, "  \"dim\": %lld,\n", static_cast<long long>(d));
    std::fprintf(f, "  \"rank\": %lld,\n", static_cast<long long>(C));
    std::fprintf(f, "  \"threads\": %d,\n", t);
    std::fprintf(f, "  \"trials\": %d,\n", args.trials);
    std::fprintf(f, "  \"scale\": %g,\n", args.scale);
    std::fprintf(f, "  \"dense_method\": \"%s\",\n",
                 std::string(to_string(dense_plan.resolved_method())).c_str());
    std::fprintf(f,
                 "  \"metric\": \"median seconds per mode-1 MTTKRP (plan "
                 "execute)\",\n");
    std::fprintf(f, "  \"cases\": [\n");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::fprintf(f,
                   "    {\"density\": %g, \"nnz\": %lld, \"dense_s\": %.6g, "
                   "\"coo_plan_s\": %.6g, \"csf_plan_s\": %.6g, "
                   "\"csf_f32_plan_s\": %.6g, "
                   "\"dense_wins_vs_csf\": %s}%s\n",
                   c.density, c.nnz, c.dense_s, c.coo_s, c.csf_s, c.csf32_s,
                   c.dense_s < c.csf_s ? "true" : "false",
                   i + 1 < cases.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return failures == 0 ? 0 : 1;
}
