/// \file bench_fig7_cpals.cpp
/// Reproduces Figure 7: per-iteration CP-ALS time on the neuroimaging
/// tensors, comparing this library (1-step for external modes, 2-step for
/// internal — the paper's policy) against the Tensor-Toolbox-style baseline
/// (explicit permute + explicit KRP + one GEMM, parallelism only inside
/// BLAS), for ranks C in {10, 15, 20, 25, 30}, sequential and parallel.
///
/// Workload: synthetic fMRI tensors with the paper's aspect ratios —
/// 4-way time x subjects x regions x regions, and the 3-way symmetric
/// linearization time x subjects x region-pairs (Section 5.3.3; the paper's
/// full size is 225 x 59 x 200 x 200 / 225 x 59 x 19900; --scale shrinks
/// the region count).
///
/// Paper findings this harness checks:
///  - up to ~2x sequential speedup of ours over the TTB-style baseline;
///  - larger parallel speedups, growing with C (paper: 6.7x 3D, 7.4x 4D).

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "baseline/ttb_cp_als.hpp"
#include "bench_common.hpp"
#include "core/cp_als.hpp"
#include "sim/fmri.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

/// Median per-iteration seconds of a CP-ALS run with fixed sweep count.
double per_iter_seconds(const Tensor& X, index_t rank, int threads,
                        bool ttb_style, int sweeps) {
  ExecContext ctx(threads);
  CpAlsOptions opts;
  opts.rank = rank;
  opts.max_iters = sweeps;
  opts.tol = 0.0;          // run exactly `sweeps` iterations
  opts.compute_fit = false;  // timing-only, as in the paper's figure
  opts.exec = &ctx;
  const CpAlsResult r =
      ttb_style ? baseline::ttb_cp_als(X, opts) : cp_als(X, opts);
  std::vector<double> secs;
  for (const CpAlsIterStats& s : r.iters) secs.push_back(s.seconds);
  return median(secs);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.2);
  bench::banner("Figure 7: CP-ALS per-iteration time, ours vs TTB-style",
                args);

  // Scale the region mode; time/subject modes match the paper.
  sim::FmriOptions fo;
  fo.regions = std::max<index_t>(
      8, static_cast<index_t>(std::llround(200 * args.scale)));
  fo.time_steps = std::max<index_t>(
      16, static_cast<index_t>(std::llround(225 * std::sqrt(args.scale))));
  fo.subjects = std::max<index_t>(
      8, static_cast<index_t>(std::llround(59 * std::sqrt(args.scale))));
  fo.components = 5;
  fo.noise_level = 0.05;
  const sim::FmriData data = sim::make_fmri_tensor(fo);
  const Tensor& X4 = data.tensor;
  const Tensor X3 = sim::symmetrize_linearize(X4);

  std::printf("4D tensor: %lld x %lld x %lld x %lld (%lld entries)\n",
              static_cast<long long>(X4.dim(0)),
              static_cast<long long>(X4.dim(1)),
              static_cast<long long>(X4.dim(2)),
              static_cast<long long>(X4.dim(3)),
              static_cast<long long>(X4.numel()));
  std::printf("3D tensor: %lld x %lld x %lld (%lld entries)\n",
              static_cast<long long>(X3.dim(0)),
              static_cast<long long>(X3.dim(1)),
              static_cast<long long>(X3.dim(2)),
              static_cast<long long>(X3.numel()));

  const int sweeps = std::max(2, args.trials);
  const int tmax =
      *std::max_element(args.threads.begin(), args.threads.end());

  for (const auto& [name, X] :
       {std::pair<const char*, const Tensor*>{"3D", &X3},
        std::pair<const char*, const Tensor*>{"4D", &X4}}) {
    std::printf("\n--- %s tensor ---\n", name);
    std::printf("%-6s %-9s %-14s %-14s %-10s\n", "C", "threads", "ours(s/it)",
                "ttb(s/it)", "speedup");
    bench::print_rule(58);
    for (index_t C : {index_t{10}, index_t{15}, index_t{20}, index_t{25},
                      index_t{30}}) {
      for (int t : {1, tmax}) {
        const double ours = per_iter_seconds(*X, C, t, false, sweeps);
        const double ttb = per_iter_seconds(*X, C, t, true, sweeps);
        std::printf("%-6lld %-9d %-14.4f %-14.4f %.2fx\n",
                    static_cast<long long>(C), t, ours, ttb, ttb / ours);
      }
    }
  }
  std::printf(
      "\nexpected shape (paper 5.3.3): ours faster at every C; sequential "
      "speedup\n~2x; parallel speedup grows with C (paper reached 6.7x/7.4x "
      "on 12 cores).\n");
  return 0;
}
