/// \file bench_ablation_dimtree.cpp
/// Validates the paper's Section 6 projection for its stated future work:
/// sharing partial MTTKRPs across the modes of a sweep via the Phan et al.
/// dimension-tree scheme "could expect a further reduction in per-iteration
/// CP-ALS time of around 50% in the 3D case and 2x in the 4D case (and
/// higher for larger N)". The scheme now lives in the sweep-plan layer
/// (SweepScheme::DimTree); this bench measures per-sweep MTTKRP seconds of
/// the standard PerMode sweep against the full dimension tree AND the
/// depth-1 tree (the old two-group scheme) for N = 3..6 cubes — the
/// tree-depth ablation. --json writes the BENCH_pr3.json record.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/cp_als.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmtk;

double mttkrp_seconds_per_sweep(const Tensor& X, index_t rank, int threads,
                                SweepScheme scheme, int levels, int sweeps) {
  ExecContext ctx(threads);
  CpAlsOptions opts;
  opts.rank = rank;
  opts.max_iters = sweeps;
  opts.tol = 0.0;
  opts.compute_fit = false;
  opts.exec = &ctx;
  opts.sweep_scheme = scheme;
  opts.dimtree_levels = levels;
  const CpAlsResult r = cp_als(X, opts);
  std::vector<double> per_sweep;
  for (const auto& it : r.iters) per_sweep.push_back(it.mttkrp_seconds);
  return median(per_sweep);
}

struct Case {
  index_t order = 0;
  index_t dim = 0;
  int threads = 1;
  double permode_s = 0.0;
  double dimtree_s = 0.0;
  double dimtree_1level_s = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      // Args::parse prints the shared flags and exits; announce the one it
      // does not know about first so --help documents the full surface.
      std::printf("bench-specific: --json <path>  write the BENCH_*.json "
                  "record\n");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--json needs an output path\n");
        return 1;
      }
      json_path = argv[i + 1];
    }
  }
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.005);
  bench::banner(
      "Ablation: dimension-tree sweep scheme (Sec 6), full vs 1-level tree",
      args);
  const index_t C = 25;
  Rng rng(17);
  const int sweeps = std::max(2, args.trials);
  std::vector<Case> cases;

  std::printf("%-4s %-8s %-5s %-14s %-14s %-14s %-9s %-10s\n", "N", "dim",
              "thr", "permode(s/sw)", "dimtree(s/sw)", "dt-1lvl(s/sw)",
              "speedup", "paper-proj");
  bench::print_rule(84);
  for (index_t N = 3; N <= 6; ++N) {
    const index_t d = bench::cube_dim(N, args.scale);
    std::vector<index_t> dims(static_cast<std::size_t>(N), d);
    Tensor X = Tensor::random_uniform(dims, rng);
    for (int t : args.threads) {
      Case c;
      c.order = N;
      c.dim = d;
      c.threads = t;
      c.permode_s = mttkrp_seconds_per_sweep(X, C, t, SweepScheme::PerMode,
                                             0, sweeps);
      c.dimtree_s = mttkrp_seconds_per_sweep(X, C, t, SweepScheme::DimTree,
                                             0, sweeps);
      c.dimtree_1level_s = mttkrp_seconds_per_sweep(
          X, C, t, SweepScheme::DimTree, 1, sweeps);
      cases.push_back(c);
      const char* proj = (N == 3) ? "~1.5x" : (N == 4) ? "~2x" : ">2x";
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    c.permode_s / c.dimtree_s);
      std::printf("%-4lld %-8lld %-5d %-14.4f %-14.4f %-14.4f %-9s %-10s\n",
                  static_cast<long long>(N), static_cast<long long>(d), t,
                  c.permode_s, c.dimtree_s, c.dimtree_1level_s, speedup,
                  proj);
    }
  }
  std::printf(
      "\nexpected: speedup grows with N (two full-tensor passes per sweep\n"
      "instead of N); the full tree matches or beats the 1-level tree on\n"
      "N >= 5 where group recoveries themselves get reused.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"ablation_dimtree_sweep\",\n");
    std::fprintf(f, "  \"schema\": 1,\n");
    std::fprintf(f, "  \"rank\": %lld,\n", static_cast<long long>(C));
    std::fprintf(f, "  \"sweeps\": %d,\n", sweeps);
    std::fprintf(f, "  \"scale\": %g,\n", args.scale);
    std::fprintf(f, "  \"metric\": \"median MTTKRP seconds per ALS sweep\",\n");
    std::fprintf(f, "  \"cases\": [\n");
    for (std::size_t i = 0; i < cases.size(); ++i) {
      const Case& c = cases[i];
      std::fprintf(f,
                   "    {\"order\": %lld, \"dim\": %lld, \"threads\": %d, "
                   "\"permode_s_per_sweep\": %.6g, "
                   "\"dimtree_s_per_sweep\": %.6g, "
                   "\"dimtree_1level_s_per_sweep\": %.6g, "
                   "\"speedup_full_tree\": %.4g, "
                   "\"speedup_1level\": %.4g}%s\n",
                   static_cast<long long>(c.order),
                   static_cast<long long>(c.dim), c.threads, c.permode_s,
                   c.dimtree_s, c.dimtree_1level_s,
                   c.permode_s / c.dimtree_s,
                   c.permode_s / c.dimtree_1level_s,
                   i + 1 < cases.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
