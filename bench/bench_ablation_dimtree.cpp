/// \file bench_ablation_dimtree.cpp
/// Validates the paper's Section 6 projection for its stated future work:
/// using the Phan et al. dimension-tree scheme to share partial MTTKRPs
/// across modes "could expect a further reduction in per-iteration CP-ALS
/// time of around 50% in the 3D case and 2x in the 4D case (and higher for
/// larger N)". We implement that scheme (cp_als_dimtree) and measure the
/// per-sweep MTTKRP time against the standard driver for N = 3..6 cubes.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/cp_als.hpp"
#include "core/cp_als_dt.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace dmtk;

double mttkrp_seconds_per_sweep(const Tensor& X, index_t rank, int threads,
                                bool dimtree, int sweeps) {
  ExecContext ctx(threads);
  CpAlsOptions opts;
  opts.rank = rank;
  opts.max_iters = sweeps;
  opts.tol = 0.0;
  opts.compute_fit = false;
  opts.exec = &ctx;
  const CpAlsResult r =
      dimtree ? cp_als_dimtree(X, opts) : cp_als(X, opts);
  std::vector<double> per_sweep;
  for (const auto& it : r.iters) per_sweep.push_back(it.mttkrp_seconds);
  return median(per_sweep);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.005);
  bench::banner("Ablation: dimension-tree MTTKRP reuse across modes (Sec 6)",
                args);
  const index_t C = 25;
  Rng rng(17);
  const int sweeps = std::max(2, args.trials);

  std::printf("%-4s %-10s %-9s %-14s %-14s %-10s %-12s\n", "N", "dim", "thr",
              "std(s/sweep)", "dt(s/sweep)", "speedup", "paper-proj");
  bench::print_rule(78);
  for (index_t N = 3; N <= 6; ++N) {
    const index_t d = bench::cube_dim(N, args.scale);
    std::vector<index_t> dims(static_cast<std::size_t>(N), d);
    Tensor X = Tensor::random_uniform(dims, rng);
    for (int t : args.threads) {
      const double std_s = mttkrp_seconds_per_sweep(X, C, t, false, sweeps);
      const double dt_s = mttkrp_seconds_per_sweep(X, C, t, true, sweeps);
      const char* proj = (N == 3) ? "~1.5x" : (N == 4) ? "~2x" : ">2x";
      std::printf("%-4lld %-10lld %-9d %-14.4f %-14.4f %-10.2fx %-12s\n",
                  static_cast<long long>(N), static_cast<long long>(d), t,
                  std_s, dt_s, std_s / dt_s, proj);
    }
  }
  std::printf("\nexpected: speedup grows with N (two full-tensor passes per "
              "sweep instead of N).\n");
  return 0;
}
