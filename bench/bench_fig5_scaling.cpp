/// \file bench_fig5_scaling.cpp
/// Reproduces Figure 5 (a-d): MTTKRP time for the 1-step and 2-step
/// algorithms and the DGEMM baseline, for every mode of N-way cubic tensors
/// (N = 3..6), over a thread sweep. C = 25 columns throughout.
///
/// The baseline follows the paper exactly: it is the time of ONE GEMM
/// between column-major matrices of the same dimensions as X(n) and the KRP
/// — a lower bound on the reorder-based approach that ignores reordering
/// and KRP formation costs.
///
/// Paper findings this harness checks (Section 5.3.1):
///  - sequential: 2-step >= baseline >= 1-step (1-step within 2x of
///    baseline; baseline within -25%/+3% of 2-step);
///  - 1-step and 2-step scale better than the baseline with threads.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

/// Time of one DGEMM with the MTTKRP's dimensions on plain column-major
/// operands (the paper's baseline).
double baseline_gemm_seconds(index_t In, index_t cols, index_t C, int threads,
                             int trials, Rng& rng) {
  Matrix A = Matrix::random_uniform(In, cols, rng);
  Matrix B = Matrix::random_uniform(cols, C, rng);
  Matrix M(In, C);
  return time_median(trials, [&] {
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, In, C, cols, 1.0, A.data(), A.ld(),
               B.data(), B.ld(), 0.0, M.data(), M.ld(), threads);
  });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.005);
  bench::banner("Figure 5: MTTKRP scaling — 1-step vs 2-step vs DGEMM",
                args);
  const index_t C = 25;
  Rng rng(99);

  for (index_t N = 3; N <= 6; ++N) {
    const index_t d = bench::cube_dim(N, args.scale);
    std::vector<index_t> dims(static_cast<std::size_t>(N), d);
    Tensor X = Tensor::random_uniform(dims, rng);
    std::vector<Matrix> fs;
    for (index_t n = 0; n < N; ++n) {
      fs.push_back(Matrix::random_uniform(d, C, rng));
    }
    std::printf("\n--- N = %lld: %lld^%lld = %lld entries ---\n",
                static_cast<long long>(N), static_cast<long long>(d),
                static_cast<long long>(N),
                static_cast<long long>(X.numel()));
    std::printf("%-12s %-6s %-9s %-12s\n", "method", "mode", "threads",
                "seconds");
    bench::print_rule(48);

    for (int t : args.threads) {
      const double base =
          baseline_gemm_seconds(d, X.cosize(0), C, t, args.trials, rng);
      std::printf("%-12s %-6s %-9d %-12.4f\n", "baseline", "-", t, base);
      // One context per thread count; plans are built once per (mode,
      // method) outside the timing loop — what the plan API is for.
      ExecContext ctx(t);
      Matrix M(d, C);
      for (index_t mode = 0; mode < N; ++mode) {
        if (args.runs(MttkrpMethod::OneStep)) {
          MttkrpPlan plan(ctx, X.dims(), C, mode, MttkrpMethod::OneStep);
          const double s1 =
              time_median(args.trials, [&] { plan.execute(X, fs, M); });
          std::printf("%-12s %-6lld %-9d %-12.4f\n", "1-step",
                      static_cast<long long>(mode), t, s1);
        }
        if (twostep_is_defined(N, mode) &&
            args.runs(MttkrpMethod::TwoStep)) {
          MttkrpPlan plan(ctx, X.dims(), C, mode, MttkrpMethod::TwoStep);
          const double s2 =
              time_median(args.trials, [&] { plan.execute(X, fs, M); });
          std::printf("%-12s %-6lld %-9d %-12.4f\n", "2-step",
                      static_cast<long long>(mode), t, s2);
        }
      }
    }
  }
  std::printf(
      "\nexpected shape (paper 5.3.1): sequentially 2-step <= baseline <= "
      "1-step\n(1-step <= 2x baseline); 1-step/2-step scale better than "
      "baseline.\n");
  return 0;
}
