/// \file bench_fig5_scaling.cpp
/// Reproduces Figure 5 (a-d): MTTKRP time for the 1-step and 2-step
/// algorithms and the DGEMM baseline, for every mode of N-way cubic tensors
/// (N = 3..6), over a thread sweep — in BOTH precisions (f64 and the
/// templated core's f32 instantiation). C = 25 columns throughout.
///
/// The baseline follows the paper exactly: it is the time of ONE GEMM
/// between column-major matrices of the same dimensions as X(n) and the KRP
/// — a lower bound on the reorder-based approach that ignores reordering
/// and KRP formation costs.
///
/// Paper findings this harness checks (Section 5.3.1):
///  - sequential: 2-step >= baseline >= 1-step (1-step within 2x of
///    baseline; baseline within -25%/+3% of 2-step);
///  - 1-step and 2-step scale better than the baseline with threads;
///  - fp32 approaches 2x the fp64 throughput on the bandwidth-bound
///    shapes (the motivating economy of the scalar-templated core);
///  - the mixed-precision `acc64` rows (fp32 storage, fp64 accumulators
///    via mttkrp_acc64) price the fp64-fit-floor recovery.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

/// One timed row for the --json record.
struct SweepRow {
  index_t order;
  const char* method;  // "baseline" | "1-step" | "2-step"
  const char* precision;
  index_t mode;  // -1 for the baseline
  int threads;
  double seconds;
};

std::vector<SweepRow> g_rows;

/// Time of one GEMM with the MTTKRP's dimensions on plain column-major
/// operands (the paper's baseline), at scalar type T.
template <typename T>
double baseline_gemm_seconds(index_t In, index_t cols, index_t C, int threads,
                             int trials, Rng& rng) {
  MatrixT<T> A = MatrixT<T>::random_uniform(In, cols, rng);
  MatrixT<T> B = MatrixT<T>::random_uniform(cols, C, rng);
  MatrixT<T> M(In, C);
  return time_median(trials, [&] {
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, In, C, cols, T{1}, A.data(), A.ld(),
               B.data(), B.ld(), T{0}, M.data(), M.ld(), threads);
  });
}

/// One precision's sweep over modes and kernels at a fixed thread count.
template <typename T>
void run_precision(const TensorT<T>& X, const std::vector<MatrixT<T>>& fs,
                   const char* prec, index_t d, index_t C, int t,
                   const bench::Args& args, Rng& rng) {
  const index_t N = X.order();
  const double base =
      baseline_gemm_seconds<T>(d, X.cosize(0), C, t, args.trials, rng);
  std::printf("%-12s %-5s %-6s %-9d %-12.4f\n", "baseline", prec, "-", t,
              base);
  g_rows.push_back({N, "baseline", prec, -1, t, base});
  // One context per (precision, thread count); plans are built once per
  // (mode, method) outside the timing loop — what the plan API is for.
  ExecContext ctx(t);
  MatrixT<T> M(d, C);
  for (index_t mode = 0; mode < N; ++mode) {
    if (args.runs(MttkrpMethod::OneStep)) {
      MttkrpPlanT<T> plan(ctx, X.dims(), C, mode, MttkrpMethod::OneStep);
      const double s1 =
          time_median(args.trials, [&] { plan.execute(X, fs, M); });
      std::printf("%-12s %-5s %-6lld %-9d %-12.4f\n", "1-step", prec,
                  static_cast<long long>(mode), t, s1);
      g_rows.push_back({N, "1-step", prec, mode, t, s1});
    }
    if (twostep_is_defined(N, mode) && args.runs(MttkrpMethod::TwoStep)) {
      MttkrpPlanT<T> plan(ctx, X.dims(), C, mode, MttkrpMethod::TwoStep);
      const double s2 =
          time_median(args.trials, [&] { plan.execute(X, fs, M); });
      std::printf("%-12s %-5s %-6lld %-9d %-12.4f\n", "2-step", prec,
                  static_cast<long long>(mode), t, s2);
      g_rows.push_back({N, "2-step", prec, mode, t, s2});
    }
    // The mixed-precision path: fp32 streams, fp64 accumulators. Sits
    // between the f32 and f64 rows — it moves the f32 bytes but loses
    // the f32 FLOP-rate doubling inside its (unblocked) inner loop.
    if constexpr (std::is_same_v<T, float>) {
      if (args.runs(MttkrpMethod::OneStep)) {
        const double sa =
            time_median(args.trials, [&] { mttkrp_acc64(X, fs, mode, M, t); });
        std::printf("%-12s %-5s %-6lld %-9d %-12.4f\n", "acc64",
                    "f32", static_cast<long long>(mode), t, sa);
        g_rows.push_back({N, "acc64", "f32", mode, t, sa});
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  // --json is this bench's own flag (bench::Args ignores unknown ones).
  const char* json_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.005);
  bench::banner(
      "Figure 5: MTTKRP scaling — 1-step vs 2-step vs DGEMM, f64 vs f32",
      args);
  const index_t C = 25;
  Rng rng(99);

  for (index_t N = 3; N <= 6; ++N) {
    const index_t d = bench::cube_dim(N, args.scale);
    std::vector<index_t> dims(static_cast<std::size_t>(N), d);
    Tensor X = Tensor::random_uniform(dims, rng);
    std::vector<Matrix> fs;
    for (index_t n = 0; n < N; ++n) {
      fs.push_back(Matrix::random_uniform(d, C, rng));
    }
    // The fp32 problem is the fp64 one rounded, so the two columns time
    // the same arithmetic shape on the same values.
    TensorF Xf = tensor_cast<float>(X);
    std::vector<MatrixF> fsf;
    for (const Matrix& U : fs) fsf.push_back(matrix_cast<float>(U));

    std::printf("\n--- N = %lld: %lld^%lld = %lld entries ---\n",
                static_cast<long long>(N), static_cast<long long>(d),
                static_cast<long long>(N),
                static_cast<long long>(X.numel()));
    std::printf("%-12s %-5s %-6s %-9s %-12s\n", "method", "prec", "mode",
                "threads", "seconds");
    bench::print_rule(52);

    for (int t : args.threads) {
      run_precision<double>(X, fs, "f64", d, C, t, args, rng);
      run_precision<float>(Xf, fsf, "f32", d, C, t, args, rng);
    }
  }
  std::printf(
      "\nexpected shape (paper 5.3.1): sequentially 2-step <= baseline <= "
      "1-step\n(1-step <= 2x baseline); 1-step/2-step scale better than "
      "baseline; f32 rows\napproach half the f64 seconds on bandwidth-bound "
      "shapes.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path);
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"fig5_scaling\",\n");
    std::fprintf(f, "  \"scale\": %g,\n  \"rank\": %lld,\n", args.scale,
                 static_cast<long long>(C));
    std::fprintf(f, "  \"trials\": %d,\n  \"rows\": [\n", args.trials);
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
      const SweepRow& r = g_rows[i];
      std::fprintf(f,
                   "    {\"order\": %lld, \"method\": \"%s\", "
                   "\"precision\": \"%s\", \"mode\": %lld, \"threads\": %d, "
                   "\"median_seconds\": %.6f}%s\n",
                   static_cast<long long>(r.order), r.method, r.precision,
                   static_cast<long long>(r.mode), r.threads, r.seconds,
                   i + 1 < g_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
