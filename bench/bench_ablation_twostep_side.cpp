/// \file bench_ablation_twostep_side.cpp
/// Ablation of Algorithm 4's side-selection heuristic (line 4: use the left
/// partial MTTKRP when I_Ln > I_Rn). On non-cubic tensors we force BOTH
/// orderings and measure which is faster, validating that the heuristic
/// picks the right side. The first-step GEMM flops are identical either
/// way; the second step costs O(I_n * min-side * C), which is what the
/// heuristic minimizes.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

/// 2-step with the side forced (bypasses the heuristic) via the plan API's
/// TwoStepSide knob.
double forced_twostep_seconds(const ExecContext& ctx, const Tensor& X,
                              std::span<const Matrix> fs, index_t mode,
                              bool left_first, int trials) {
  const index_t C = fs[0].cols();
  MttkrpPlan plan(ctx, X.dims(), C, mode, MttkrpMethod::TwoStep,
                  left_first ? TwoStepSide::Left : TwoStepSide::Right);
  Matrix M(X.dim(mode), C);
  return time_median(trials, [&] { plan.execute(X, fs, M); });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.01);
  bench::banner("Ablation: 2-step left/right ordering heuristic", args);

  // Skewed 3-way shapes around a fixed entry budget; mode 1 is internal.
  const index_t total =
      std::max<index_t>(1 << 16, static_cast<index_t>(750e6 * args.scale));
  Rng rng(3);
  const index_t C = 25;
  std::printf("%-24s %-8s %-12s %-12s %-10s %-10s\n", "shape (I0 x I1 x I2)",
              "IL>IR?", "left(s)", "right(s)", "faster", "heuristic");
  bench::print_rule(80);

  for (double skew : {0.05, 0.25, 1.0, 4.0, 20.0}) {
    // I0 = skew * I2; keep I1 moderate.
    const index_t I1 = 16;
    const index_t base = static_cast<index_t>(
        std::sqrt(static_cast<double>(total / I1) / skew));
    const index_t I2 = std::max<index_t>(4, base);
    const index_t I0 = std::max<index_t>(
        4, static_cast<index_t>(skew * static_cast<double>(base)));
    Tensor X = Tensor::random_uniform({I0, I1, I2}, rng);
    std::vector<Matrix> fs;
    for (index_t n = 0; n < 3; ++n) {
      fs.push_back(Matrix::random_uniform(X.dim(n), C, rng));
    }
    const ExecContext ctx(args.threads.back());
    const double left =
        forced_twostep_seconds(ctx, X, fs, 1, true, args.trials);
    const double right =
        forced_twostep_seconds(ctx, X, fs, 1, false, args.trials);
    const bool heuristic_left = twostep_uses_left(X, 1);
    const bool left_won = left <= right;
    std::printf("%6lld x %-4lld x %-8lld %-8s %-12.4f %-12.4f %-10s %-10s%s\n",
                static_cast<long long>(I0), static_cast<long long>(I1),
                static_cast<long long>(I2),
                X.left_size(1) > X.right_size(1) ? "yes" : "no", left, right,
                left_won ? "left" : "right", heuristic_left ? "left" : "right",
                (left_won == heuristic_left) ? "" : "  <-- MISPREDICT");
  }
  std::printf("\nexpected: the heuristic column matches the faster column "
              "except near the\ncrossover (IL ~ IR), where both sides cost "
              "the same.\n");
  return 0;
}
