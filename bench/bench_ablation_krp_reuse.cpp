/// \file bench_ablation_krp_reuse.cpp
/// Ablation of Algorithm 1's design choice: reusing the Z-2 intermediate
/// Hadamard products. google-benchmark microbenchmark sweeping Z and C,
/// reporting rows/second for the Naive and Reuse variants. The flop model
/// predicts Naive does (Z-1) Hadamard products per row vs ~1 for Reuse, so
/// the gap should widen with Z (paper Section 5.2: 1.5-2.5x for Z in 3..4).

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "core/krp.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmtk;

struct KrpFixture {
  std::vector<Matrix> fs;
  FactorList fl;
  index_t J = 1;

  KrpFixture(int Z, index_t C, index_t target_rows) {
    Rng rng(static_cast<std::uint64_t>(Z * 100 + C));
    const index_t Jz = std::max<index_t>(
        2, static_cast<index_t>(std::llround(
               std::pow(static_cast<double>(target_rows), 1.0 / Z))));
    for (int z = 0; z < Z; ++z) {
      fs.push_back(Matrix::random_uniform(Jz, C, rng));
      J *= Jz;
    }
    for (const Matrix& f : fs) fl.push_back(&f);
  }
};

void run_variant(benchmark::State& state, KrpVariant v) {
  const int Z = static_cast<int>(state.range(0));
  const index_t C = state.range(1);
  KrpFixture fx(Z, C, /*target_rows=*/1 << 18);
  Matrix Kt(C, fx.J);
  for (auto _ : state) {
    if (v == KrpVariant::Reuse) {
      krp_rows_reuse(fx.fl, 0, fx.J, Kt.data(), C);
    } else {
      krp_rows_naive(fx.fl, 0, fx.J, Kt.data(), C);
    }
    benchmark::DoNotOptimize(Kt.data());
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(fx.J) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

void BM_KrpNaive(benchmark::State& s) { run_variant(s, KrpVariant::Naive); }
void BM_KrpReuse(benchmark::State& s) { run_variant(s, KrpVariant::Reuse); }

BENCHMARK(BM_KrpNaive)
    ->ArgsProduct({{2, 3, 4, 5}, {25, 50}})
    ->UseRealTime();
BENCHMARK(BM_KrpReuse)
    ->ArgsProduct({{2, 3, 4, 5}, {25, 50}})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
