/// \file bench_ablation_gemm.cpp
/// Ablation for the Section 5.3.1 discussion: GEMM performance depends
/// strongly on operand shape. The MTTKRP baseline multiplies an extremely
/// wide matrix (I_n x I/I_n) by a skinny KRP (I/I_n x C) — an inner-product
/// shape that threaded BLAS handles poorly — while the 2-step algorithm's
/// partial MTTKRP is closer to square. This google-benchmark binary
/// measures our mini-BLAS GEMM across those shapes so the effect can be
/// quantified on the machine at hand.

#include <benchmark/benchmark.h>

#include "blas/gemm.hpp"
#include "core/matrix.hpp"
#include "util/rng.hpp"

namespace {

using namespace dmtk;

void gemm_shape(benchmark::State& state, index_t m, index_t n, index_t k,
                int threads) {
  Rng rng(1);
  Matrix A = Matrix::random_uniform(m, k, rng);
  Matrix B = Matrix::random_uniform(k, n, rng);
  Matrix C(m, n);
  for (auto _ : state) {
    blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
               blas::Trans::NoTrans, m, n, k, 1.0, A.data(), A.ld(), B.data(),
               B.ld(), 0.0, C.data(), C.ld(), threads);
    benchmark::DoNotOptimize(C.data());
    benchmark::ClobberMemory();
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * static_cast<double>(m) * static_cast<double>(n) *
          static_cast<double>(k) * static_cast<double>(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}

// Square reference shape (BLAS-friendly).
void BM_GemmSquare(benchmark::State& s) {
  gemm_shape(s, 256, 256, 256, static_cast<int>(s.range(0)));
}
// External-mode MTTKRP shape: tall-skinny output, long k (inner-product).
void BM_GemmMttkrpExternal(benchmark::State& s) {
  gemm_shape(s, 128, 25, 128 * 128, static_cast<int>(s.range(0)));
}
// 2-step partial MTTKRP shape: much more balanced.
void BM_GemmTwoStepPartial(benchmark::State& s) {
  gemm_shape(s, 128 * 128, 25, 128, static_cast<int>(s.range(0)));
}
// Small-block shape used by the 1-step internal-mode loop.
void BM_GemmOneStepBlock(benchmark::State& s) {
  gemm_shape(s, 128, 25, 128, static_cast<int>(s.range(0)));
}

BENCHMARK(BM_GemmSquare)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_GemmMttkrpExternal)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_GemmTwoStepPartial)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_GemmOneStepBlock)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
