/// \file bench_fig4_krp.cpp
/// Reproduces Figure 4 (a and b): Khatri-Rao product time for the Reuse
/// algorithm (Alg. 1) vs a naive row-wise algorithm vs the STREAM benchmark,
/// for Z in {2,3,4} input matrices and C in {25, 50} columns, over a sweep
/// of thread counts. Paper workload: output rows J ~ 2e7 (so ~5e8 / 1e9
/// output entries); --scale shrinks J proportionally.
///
/// Paper findings this harness checks (Section 5.2):
///  - Reuse beats Naive for Z >= 3, by 1.5-2.5x, growing with Z;
///  - Reuse is memory-bound: time comparable to STREAM on the same output;
///  - both parallel variants scale with threads.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/krp.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stream.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

double time_krp(const FactorList& fl, KrpVariant v, int threads, int trials) {
  // Pre-allocate (and first-touch) the output once: the kernel under test
  // is row-wise generation, not the allocator.
  Matrix Kt(krp_cols(fl), krp_rows(fl));
  return time_median(trials, [&] {
    krp_transposed_into(fl, Kt, v, threads);
    volatile double sink = Kt.data()[0];
    (void)sink;
  });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.05);
  bench::banner("Figure 4: KRP — Reuse (Alg 1) vs Naive vs STREAM", args);

  // Paper: J ~ 2e7 output rows; row dimensions equal per factor.
  const index_t J_target =
      std::max<index_t>(1 << 14, static_cast<index_t>(2e7 * args.scale));
  Rng rng(1234);

  for (index_t C : {index_t{25}, index_t{50}}) {
    std::printf("\n--- C = %lld (output ~ %lld x %lld) ---\n",
                static_cast<long long>(C), static_cast<long long>(J_target),
                static_cast<long long>(C));
    std::printf("%-10s %-8s %-10s %-12s %-12s %-10s\n", "variant", "Z",
                "threads", "seconds", "GB/s(out)", "vs-naive");
    bench::print_rule();

    for (int Z = 2; Z <= 4; ++Z) {
      // Equal row dimensions with product ~ J_target.
      const index_t Jz = std::max<index_t>(
          2, static_cast<index_t>(std::llround(
                 std::pow(static_cast<double>(J_target), 1.0 / Z))));
      std::vector<Matrix> fs;
      index_t J = 1;
      for (int z = 0; z < Z; ++z) {
        fs.push_back(Matrix::random_uniform(Jz, C, rng));
        J *= Jz;
      }
      FactorList fl;
      for (const Matrix& f : fs) fl.push_back(&f);
      const double out_gb =
          static_cast<double>(J * C) * sizeof(double) / 1e9;

      for (int t : args.threads) {
        const double naive = time_krp(fl, KrpVariant::Naive, t, args.trials);
        const double reuse = time_krp(fl, KrpVariant::Reuse, t, args.trials);
        std::printf("%-10s %-8d %-10d %-12.4f %-12.2f %-10s\n", "Naive", Z, t,
                    naive, out_gb / naive, "1.00x");
        std::printf("%-10s %-8d %-10d %-12.4f %-12.2f %.2fx\n", "Reuse", Z, t,
                    reuse, out_gb / reuse, naive / reuse);
      }
    }

    // STREAM comparator: read+scale+write a buffer the size of the output.
    std::vector<double> src(static_cast<std::size_t>(J_target * C), 1.0);
    std::vector<double> dst(src.size(), 0.0);
    for (int t : args.threads) {
      const double s = time_median(args.trials, [&] {
        stream::read_scale_write(src, dst, 1.000001, t);
      });
      const double gb = static_cast<double>(src.size()) * sizeof(double) / 1e9;
      std::printf("%-10s %-8s %-10d %-12.4f %-12.2f\n", "STREAM", "-", t, s,
                  2.0 * gb / s);
    }
  }
  std::printf("\nexpected shape (paper 5.2): Reuse <= Naive always; gap grows"
              " with Z;\nReuse time within ~2x of STREAM (memory-bound).\n");
  return 0;
}
