#pragma once
/// \file bench_common.hpp
/// \brief Shared harness for the figure-reproduction benchmarks: command
/// line parsing, size scaling relative to the paper's workloads, and
/// aligned table printing.
///
/// Every bench accepts:
///   --scale <f>     fraction of the paper's tensor sizes (default small
///                   enough for a laptop/CI box; 1.0 = paper size)
///   --threads <csv> thread counts to sweep (default "1,2,4")
///   --trials <n>    timing repetitions; medians are reported
///
/// NOTE on hardware: the paper sweeps 1-12 threads on a 12-core Xeon. On a
/// machine with fewer cores the sweep still runs (oversubscribed), but only
/// the sequential relationships are meaningful; see EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/mttkrp.hpp"
#include "exec/exec_context.hpp"
#include "util/common.hpp"
#include "util/env.hpp"

namespace dmtk::bench {

struct Args {
  double scale = 0.01;              ///< fraction of the paper's entry count
  std::vector<int> threads{1, 2, 4};
  int trials = 3;
  /// Optional --method override (parse_mttkrp_method names). Benches that
  /// sweep several kernels restrict themselves to this one when set.
  MttkrpMethod method = MttkrpMethod::Auto;
  bool method_set = false;

  /// True when the bench should run `m` given the --method restriction
  /// (--method auto keeps the full sweep).
  [[nodiscard]] bool runs(MttkrpMethod m) const {
    return !method_set || method == MttkrpMethod::Auto || method == m;
  }

  static Args parse(int argc, char** argv, double default_scale = 0.01) {
    Args a;
    a.scale = default_scale;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        return (i + 1 < argc) ? argv[++i] : "";
      };
      if (arg == "--scale") {
        a.scale = std::atof(next());
      } else if (arg == "--threads") {
        a.threads.clear();
        const std::string csv = next();
        std::size_t pos = 0;
        while (pos < csv.size()) {
          std::size_t comma = csv.find(',', pos);
          if (comma == std::string::npos) comma = csv.size();
          a.threads.push_back(std::atoi(csv.substr(pos, comma - pos).c_str()));
          pos = comma + 1;
        }
      } else if (arg == "--trials") {
        a.trials = std::atoi(next());
      } else if (arg == "--method") {
        const char* name = next();
        const auto m = parse_mttkrp_method(name);
        if (!m) {
          std::fprintf(stderr, "unknown MTTKRP method '%s'\n", name);
          std::exit(1);
        }
        a.method = *m;
        a.method_set = true;
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--scale f] [--threads csv] [--trials n] "
            "[--method m]\n"
            "  --scale   fraction of the paper's tensor size (1.0 = paper)\n"
            "  --threads comma-separated thread counts to sweep\n"
            "  --trials  timing repetitions (median reported)\n"
            "  --method  restrict to one MTTKRP kernel (reference, reorder,\n"
            "            1-step-seq, 1-step, 2-step, auto)\n",
            argv[0]);
        std::exit(0);
      }
    }
    if (a.threads.empty()) a.threads.push_back(1);
    if (a.trials < 1) a.trials = 1;
    return a;
  }
};

/// The paper's synthetic tensors hold ~750M entries; dimension of an N-way
/// cube holding `scale` of that.
inline index_t cube_dim(index_t order, double scale) {
  const double target = 750e6 * scale;
  return std::max<index_t>(
      4, static_cast<index_t>(std::llround(std::pow(
             target, 1.0 / static_cast<double>(order)))));
}

/// Print a header banner with the environment facts that matter.
inline void banner(const char* title, const Args& a) {
  std::printf("=== %s ===\n", title);
  std::printf("scale=%.4g  trials=%d  hardware_threads=%d  threads-swept:",
              a.scale, a.trials, hardware_threads());
  for (int t : a.threads) std::printf(" %d", t);
  std::printf("\n");
  if (hardware_threads() < 12) {
    std::printf(
        "note: paper used 12 cores; with %d hardware thread(s) the parallel\n"
        "      points are oversubscribed and only sequential relationships\n"
        "      are meaningful (see EXPERIMENTS.md).\n",
        hardware_threads());
  }
}

/// Simple fixed-width row printers so the output reads like the paper's
/// tables.
inline void print_rule(int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace dmtk::bench
