/// \file bench_fig6_breakdown.cpp
/// Reproduces Figure 6 (a-h): per-phase time breakdown of the baseline (B),
/// 1-step (1S), and 2-step (2S) MTTKRP algorithms across modes, for N-way
/// cubes with N = 3..6, sequentially (T = 1) and in parallel (T = max of
/// the sweep). Categories match the paper's legend: Full KRP, Left & Right
/// KRP, DGEMM, DGEMV, REDUCE.
///
/// Paper findings this harness checks (Section 5.3.2):
///  - 1-step spends a large share in KRP, especially for external modes;
///  - 2-step spends almost all its time in the single DGEMM;
///  - the proportions persist between sequential and parallel runs.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "blas/gemm.hpp"
#include "core/mttkrp.hpp"
#include "exec/mttkrp_plan.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace dmtk;

void print_breakdown(const char* label, index_t mode,
                     const MttkrpTimings& t) {
  std::printf("  %-4s mode=%lld  krp=%-8.4f lrkrp=%-8.4f gemm=%-8.4f "
              "gemv=%-8.4f reduce=%-8.4f total=%-8.4f\n",
              label, static_cast<long long>(mode), t.krp, t.krp_lr, t.gemm,
              t.gemv, t.reduce, t.total);
}

MttkrpTimings averaged(const ExecContext& ctx, const Tensor& X,
                       std::span<const Matrix> fs, index_t mode,
                       MttkrpMethod m, int trials) {
  // One plan, executed `trials` times: the plan accumulates its own phase
  // breakdown, replacing the old MttkrpTimings out-pointer.
  MttkrpPlan plan(ctx, X.dims(), fs[0].cols(), mode, m);
  Matrix M(X.dim(mode), fs[0].cols());
  for (int i = 0; i < trials; ++i) {
    plan.execute(X, fs, M);
  }
  const MttkrpTimings& sum = plan.timings();
  MttkrpTimings avg;
  const double inv = 1.0 / trials;
  avg.krp = sum.krp * inv;
  avg.krp_lr = sum.krp_lr * inv;
  avg.gemm = sum.gemm * inv;
  avg.gemv = sum.gemv * inv;
  avg.reduce = sum.reduce * inv;
  avg.total = sum.total * inv;
  return avg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmtk;
  const bench::Args args = bench::Args::parse(argc, argv, /*scale=*/0.005);
  bench::banner("Figure 6: MTTKRP time breakdown across modes", args);
  const index_t C = 25;
  Rng rng(7);
  const int tmax = *std::max_element(args.threads.begin(), args.threads.end());

  for (index_t N = 3; N <= 6; ++N) {
    const index_t d = bench::cube_dim(N, args.scale);
    std::vector<index_t> dims(static_cast<std::size_t>(N), d);
    Tensor X = Tensor::random_uniform(dims, rng);
    std::vector<Matrix> fs;
    for (index_t n = 0; n < N; ++n) {
      fs.push_back(Matrix::random_uniform(d, C, rng));
    }

    for (int t : {1, tmax}) {
      ExecContext ctx(t);
      std::printf("\n--- N = %lld (%lld^%lld), T = %d (%s) ---\n",
                  static_cast<long long>(N), static_cast<long long>(d),
                  static_cast<long long>(N), t,
                  t == 1 ? "sequential" : "parallel");
      // Baseline: one GEMM of the same dimensions (single category).
      {
        Matrix A = Matrix::random_uniform(d, X.cosize(0), rng);
        Matrix B = Matrix::random_uniform(X.cosize(0), C, rng);
        Matrix M(d, C);
        const double s = time_median(args.trials, [&] {
          blas::gemm(blas::Layout::ColMajor, blas::Trans::NoTrans,
                     blas::Trans::NoTrans, d, C, X.cosize(0), 1.0, A.data(),
                     A.ld(), B.data(), B.ld(), 0.0, M.data(), M.ld(), t);
        });
        std::printf("  B    (all modes equivalent)  gemm=%-8.4f\n", s);
      }
      for (index_t mode = 0; mode < N; ++mode) {
        if (args.runs(MttkrpMethod::OneStep)) {
          print_breakdown(
              "1S", mode,
              averaged(ctx, X, fs, mode, MttkrpMethod::OneStep, args.trials));
        }
        if (twostep_is_defined(N, mode) &&
            args.runs(MttkrpMethod::TwoStep)) {
          print_breakdown(
              "2S", mode,
              averaged(ctx, X, fs, mode, MttkrpMethod::TwoStep, args.trials));
        }
      }
    }
  }
  std::printf(
      "\nexpected shape (paper 5.3.2): 1S KRP share is large (external "
      "modes);\n2S time is almost entirely DGEMM; proportions persist from "
      "T=1 to T=max.\n");
  return 0;
}
